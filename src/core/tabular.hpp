/**
 * @file
 * Tabularized serving tables (DESIGN.md §5.18): the Zhang et al. 2024
 * ("Attention, Distillation, and Tabularization") route to a practical
 * prefetcher. A distillation pass runs the trained Voyager over its
 * training stream and compiles (page-history, pc, offset) contexts
 * into two layered lookup tables — a first-level exact-context table
 * over the last `l1_history` (page, offset) token pairs and a
 * second-level backoff table over a shorter history — so steady-state
 * serving is pure table probes, with the neural path kept as a
 * fallback for cold contexts (serve/tabular_predictor.hpp).
 *
 * Both levels live in util::FlatHashMap under a strict byte budget:
 * capacity is `budget_bytes` split across the levels, each entry
 * charged by a fixed per-entry storage model (key tag + frequency +
 * replacement metadata + `degree` candidate slots). Admission and
 * eviction are frequency-weighted: entries age through a CLOCK sweep
 * that halves a victim candidate's frequency until one reaches zero,
 * so recurring contexts survive churn and one-shot contexts recycle
 * their slots.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "core/vocab.hpp"
#include "util/flat_hash.hpp"
#include "util/stat_registry.hpp"

namespace voyager::core {

/** Distillation/table parameters. */
struct TabularConfig
{
    /** (page, offset) token pairs hashed into the L1 exact context. */
    std::size_t l1_history = 4;
    /** Backoff context length; must be shorter than l1_history. */
    std::size_t l2_history = 1;
    /** Include the newest PC token in both context keys. */
    bool use_pc = true;
    /** Candidate slots per entry (clamped to kMaxDegree). */
    std::uint32_t degree = 4;
    /** Strict storage budget across both levels. */
    std::uint64_t budget_bytes = 256 * 1024;
    /** Fraction of the budget given to the backoff level. */
    double l2_budget_fraction = 0.25;
};

/** One table candidate: a (page, offset) token pair with its vote. */
struct TabularCandidate
{
    std::int32_t page = 0;
    std::int16_t offset = 0;
    std::uint16_t weight = 0;
};

/** Layered L1/L2 context tables with frequency-weighted replacement. */
class TabularTable
{
  public:
    static constexpr std::size_t kMaxDegree = 8;

    /** Which level answered a probe. */
    enum class ProbeLevel : std::uint8_t
    {
        Miss = 0,
        L1 = 1,
        L2 = 2,
    };

    explicit TabularTable(const TabularConfig &cfg);

    /**
     * Record one teacher observation. `page`/`offset` point at the
     * context window, oldest first, `n` tokens long (the newest token
     * is the access the teacher predicted from); `pc` is the newest
     * PC token. Teacher candidates vote rank-weighted into the entry's
     * slots at both levels, admitting/evicting under the byte budget.
     */
    void observe(std::int32_t pc, const std::int32_t *page,
                 const std::int32_t *offset, std::size_t n,
                 const std::vector<TokenPrediction> &teacher);

    /**
     * Probe L1, then (on miss) L2. On a hit, fills `out` with the
     * entry's candidates ranked by weight (ties broken by token
     * value, so ranking never depends on slot order) and returns the
     * answering level; `out` is left empty on a miss.
     */
    ProbeLevel probe(std::int32_t pc, const std::int32_t *page,
                     const std::int32_t *offset, std::size_t n,
                     std::vector<TokenPrediction> &out) const;

    /** Per-entry storage model: key tag (8 B) + frequency (4 B) +
     *  replacement metadata (4 B) + 8 B per candidate slot. */
    std::uint64_t
    entry_bytes() const
    {
        return 16 + 8ull * degree_;
    }

    /** Modeled footprint of the admitted entries (both levels). */
    std::uint64_t storage_bytes() const;

    std::uint64_t budget_bytes() const { return cfg_.budget_bytes; }
    std::size_t l1_entries() const { return l1_.table.size(); }
    std::size_t l2_entries() const { return l2_.table.size(); }
    std::size_t l1_capacity() const { return l1_.max_entries; }
    std::size_t l2_capacity() const { return l2_.max_entries; }
    std::uint64_t observations() const { return observations_; }
    const TabularConfig &config() const { return cfg_; }

    /**
     * Export the closed `distill.table.*` namespace: budget/footprint
     * counters, per-level entry counts and admission/eviction
     * activity. Assigns values, so re-export is idempotent.
     */
    void export_stats(StatRegistry &reg) const;

  private:
    /** One table level: entries + CLOCK ring over admitted keys. */
    struct Entry
    {
        std::array<TabularCandidate, kMaxDegree> cand{};
        std::uint8_t n = 0;
        std::uint32_t freq = 0;
    };

    struct Level
    {
        FlatHashMap<std::uint64_t, Entry> table;
        /** Admitted keys, one slot per live entry; eviction replaces
         *  the victim's slot in place (no reordering). */
        std::vector<std::uint64_t> ring;
        std::size_t clock = 0;
        std::size_t max_entries = 0;
        std::size_t history = 0;
        std::uint64_t admits = 0;
        std::uint64_t evictions = 0;
    };

    /** Context key over the last `history` pairs of the window. */
    std::uint64_t context_key(std::size_t history, std::int32_t pc,
                              const std::int32_t *page,
                              const std::int32_t *offset,
                              std::size_t n) const;

    /** Rank-weighted candidate voting into an entry's slots. */
    void vote(Entry &e,
              const std::vector<TokenPrediction> &teacher) const;

    void observe_level(Level &lvl, std::uint64_t key,
                       const std::vector<TokenPrediction> &teacher);

    TabularConfig cfg_;
    std::uint32_t degree_;  ///< cfg_.degree clamped to kMaxDegree
    Level l1_;
    Level l2_;
    std::uint64_t observations_ = 0;
};

/**
 * The distillation pass: replay the teacher's top-`cfg.degree + 2`
 * token predictions over `indices` of `encoded` (each index's context
 * is its trailing `seq_len` window, exactly the windows predict_on
 * builds) and compile them into a TabularTable. `teacher[j]` must be
 * the teacher's ranked candidates for `indices[j]`.
 */
TabularTable
distill_to_table(const EncodedStream &encoded,
                 const std::vector<std::size_t> &indices,
                 const std::vector<std::vector<TokenPrediction>> &teacher,
                 std::size_t seq_len, const TabularConfig &cfg);

}  // namespace voyager::core
