#include "core/distilled.hpp"

#include <algorithm>

namespace voyager::core {

std::uint64_t
DistilledPrefetcher::key(Addr prev, Addr line, Addr pc) const
{
    std::uint64_t k = line * 0x9e3779b97f4a7c15ull;
    if (cfg_.use_prev)
        k ^= prev * 0xbf58476d1ce4e5b9ull;
    if (cfg_.use_pc)
        k ^= pc * 0x94d049bb133111ebull;
    return k;
}

DistilledPrefetcher
DistilledPrefetcher::distill(
    const std::vector<sim::LlcAccess> &stream,
    const std::vector<std::vector<Addr>> &predictions,
    const DistillConfig &cfg)
{
    DistilledPrefetcher pf(cfg);

    // Vote: context -> predicted line -> count.
    FlatHashMap<std::uint64_t, FlatHashMap<Addr, std::uint32_t>>
        votes;
    FlatHashMap<std::uint64_t, std::uint32_t> context_freq;
    Addr prev = 0;
    bool have_prev = false;
    for (std::size_t i = 0;
         i < stream.size() && i < predictions.size(); ++i) {
        const auto &a = stream[i];
        if (!predictions[i].empty() && (have_prev || !cfg.use_prev)) {
            const auto k = pf.key(prev, a.line, a.pc);
            ++context_freq[k];
            auto &v = votes[k];
            for (const Addr p : predictions[i])
                ++v[p];
        }
        prev = a.line;
        have_prev = true;
    }

    // Keep the most frequent contexts if over budget.
    std::vector<std::uint64_t> keys;
    keys.reserve(votes.size());
    for (const auto &[k, v] : votes)
        keys.push_back(k);
    if (keys.size() > cfg.max_entries) {
        // Tie-break equal frequencies by key so the survivor set
        // never depends on the map's iteration order.
        std::nth_element(keys.begin(), keys.begin() + cfg.max_entries,
                         keys.end(),
                         [&](std::uint64_t a, std::uint64_t b) {
                             const auto fa = context_freq[a];
                             const auto fb = context_freq[b];
                             if (fa != fb)
                                 return fa > fb;
                             return a < b;
                         });
        keys.resize(cfg.max_entries);
    }

    for (const auto k : keys) {
        const auto &v = votes[k];
        std::vector<std::pair<std::uint32_t, Addr>> ranked;
        ranked.reserve(v.size());
        for (const auto &[line, cnt] : v)
            ranked.emplace_back(cnt, line);
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return a.second < b.second;
                  });
        auto &slot = pf.table_[k];
        for (std::size_t i = 0;
             i < ranked.size() && i < cfg.degree; ++i)
            slot.push_back(ranked[i].second);
    }
    return pf;
}

std::vector<Addr>
DistilledPrefetcher::on_access(const sim::LlcAccess &access)
{
    std::vector<Addr> out;
    if (have_prev_ || !cfg_.use_prev) {
        const auto it =
            table_.find(key(prev_line_, access.line, access.pc));
        if (it != table_.end())
            out = it->second;
    }
    prev_line_ = access.line;
    have_prev_ = true;
    return out;
}

std::uint64_t
DistilledPrefetcher::storage_bytes() const
{
    // Key tag (8 B) + degree line addresses (8 B each).
    std::uint64_t bytes = 0;
    for (const auto &[k, v] : table_)
        bytes += 8 + 8 * v.size();
    return bytes;
}

}  // namespace voyager::core
