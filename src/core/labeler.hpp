/**
 * @file
 * Multi-label generation (paper §4.4). For every access, five
 * candidate labels are derived from the future stream:
 *   global        — next load in the global stream
 *   pc            — next load by the same PC
 *   basic_block   — next load by any PC in the same basic block
 *   spatial       — next load within ±256 lines
 *   co_occurrence — the line most often seen in the 10-access window
 *                   after occurrences of this line
 * Voyager trains against the union (multi-label BCE) or a chosen
 * single scheme (the Fig. 12/15 ablations).
 */
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/prefetcher.hpp"
#include "util/types.hpp"

namespace voyager::core {

using sim::LlcAccess;

/** The five labeling/localization schemes. */
enum class LabelScheme : std::uint8_t
{
    Global = 0,
    Pc = 1,
    BasicBlock = 2,
    Spatial = 3,
    CoOccurrence = 4,
};

inline constexpr std::size_t kNumLabelSchemes = 5;

/** Human-readable scheme name. */
std::string label_scheme_name(LabelScheme s);

/** Labeler parameters. */
struct LabelerConfig
{
    /** Spatial label window: |Δline| <= this (paper: 256). */
    std::int64_t spatial_range = 256;
    /** Max lookahead when searching for the spatial label. Kept close
     *  to the evaluation horizon so every labeling scheme's target is
     *  a near-future access (see EXPERIMENTS.md). */
    std::size_t spatial_horizon = 32;
    /** Co-occurrence future window (paper: 10). */
    std::size_t cooccurrence_window = 10;
    /** Basic-block id = pc >> this (trace layout uses 256 B blocks). */
    int basic_block_shift = 8;
    /** Max lookahead (in accesses) for the global/PC/basic-block
     *  labels; 0 = unbounded. A label that far in the future cannot be
     *  scored (or usefully prefetched) at miniature scale. */
    std::size_t label_horizon = 32;
};

/** The candidate labels of one access (line addresses). */
using LabelSet =
    std::array<std::optional<Addr>, kNumLabelSchemes>;

/**
 * Compute all five label streams for an LLC access stream. Labels are
 * always *load* lines (the paper's prefetch targets are load
 * addresses).
 */
std::vector<LabelSet> compute_labels(const std::vector<LlcAccess> &stream,
                                     const LabelerConfig &cfg = {});

/** Distinct label lines of a set restricted to `enabled` schemes. */
std::vector<Addr> distinct_labels(const LabelSet &set,
                                  const std::vector<LabelScheme> &enabled);

}  // namespace voyager::core
