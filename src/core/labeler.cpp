#include "core/labeler.hpp"

#include <algorithm>
#include <unordered_map>

namespace voyager::core {

std::string
label_scheme_name(LabelScheme s)
{
    switch (s) {
      case LabelScheme::Global:
        return "global";
      case LabelScheme::Pc:
        return "pc";
      case LabelScheme::BasicBlock:
        return "basic_block";
      case LabelScheme::Spatial:
        return "spatial";
      case LabelScheme::CoOccurrence:
        return "co_occurrence";
    }
    return "?";
}

std::vector<LabelSet>
compute_labels(const std::vector<LlcAccess> &stream,
               const LabelerConfig &cfg)
{
    const std::size_t n = stream.size();
    std::vector<LabelSet> labels(n);

    // Backward passes: next load globally / by PC / by basic block.
    // Indices (not lines) are tracked so the label horizon can bound
    // how far ahead a label may point.
    {
        const std::size_t horizon = cfg.label_horizon;
        auto within = [&](std::size_t from, std::size_t at) {
            return horizon == 0 || at - from <= horizon;
        };
        std::optional<std::size_t> next_global;
        std::unordered_map<Addr, std::size_t> next_by_pc;
        std::unordered_map<Addr, std::size_t> next_by_bb;
        for (std::size_t i = n; i-- > 0;) {
            const auto &a = stream[i];
            const Addr bb = a.pc >> cfg.basic_block_shift;
            if (next_global && within(i, *next_global)) {
                labels[i][static_cast<std::size_t>(
                    LabelScheme::Global)] = stream[*next_global].line;
            }
            if (auto it = next_by_pc.find(a.pc);
                it != next_by_pc.end() && within(i, it->second)) {
                labels[i][static_cast<std::size_t>(LabelScheme::Pc)] =
                    stream[it->second].line;
            }
            if (auto it = next_by_bb.find(bb);
                it != next_by_bb.end() && within(i, it->second)) {
                labels[i][static_cast<std::size_t>(
                    LabelScheme::BasicBlock)] = stream[it->second].line;
            }
            if (a.is_load) {
                next_global = i;
                next_by_pc[a.pc] = i;
                next_by_bb[bb] = i;
            }
        }
    }

    // Forward scan: spatial label (first future load within range).
    for (std::size_t i = 0; i < n; ++i) {
        const auto line = static_cast<std::int64_t>(stream[i].line);
        const std::size_t end = std::min(n, i + 1 + cfg.spatial_horizon);
        for (std::size_t j = i + 1; j < end; ++j) {
            if (!stream[j].is_load)
                continue;
            const auto cand = static_cast<std::int64_t>(stream[j].line);
            if (std::llabs(cand - line) <= cfg.spatial_range) {
                labels[i][static_cast<std::size_t>(
                    LabelScheme::Spatial)] = stream[j].line;
                break;
            }
        }
    }

    // Co-occurrence: the line most frequently observed in the
    // 10-access windows following this line's occurrences (a stable,
    // highly predictable association — the paper's vec-follows-upd
    // example), attached at an occurrence only when it actually
    // materializes in that window, so the label is also a valid
    // prefetch target there.
    {
        std::unordered_map<Addr, std::unordered_map<Addr, std::uint32_t>>
            follower_counts;
        for (std::size_t i = 0; i < n; ++i) {
            const Addr a = stream[i].line;
            const std::size_t end =
                std::min(n, i + 1 + cfg.cooccurrence_window);
            auto &counts = follower_counts[a];
            for (std::size_t j = i + 1; j < end; ++j) {
                if (stream[j].is_load && stream[j].line != a)
                    ++counts[stream[j].line];
            }
        }
        std::unordered_map<Addr, Addr> best;
        for (const auto &[line, counts] : follower_counts) {
            Addr arg = 0;
            std::uint32_t mx = 0;
            for (const auto &[cand, cnt] : counts) {
                if (cnt > mx || (cnt == mx && cand < arg)) {
                    mx = cnt;
                    arg = cand;
                }
            }
            if (mx > 0)
                best.emplace(line, arg);
        }
        for (std::size_t i = 0; i < n; ++i) {
            auto it = best.find(stream[i].line);
            if (it == best.end())
                continue;
            const std::size_t end =
                std::min(n, i + 1 + cfg.cooccurrence_window);
            for (std::size_t j = i + 1; j < end; ++j) {
                if (stream[j].is_load && stream[j].line == it->second) {
                    labels[i][static_cast<std::size_t>(
                        LabelScheme::CoOccurrence)] = it->second;
                    break;
                }
            }
        }
    }
    return labels;
}

std::vector<Addr>
distinct_labels(const LabelSet &set,
                const std::vector<LabelScheme> &enabled)
{
    std::vector<Addr> out;
    for (const LabelScheme s : enabled) {
        const auto &lab = set[static_cast<std::size_t>(s)];
        if (!lab)
            continue;
        if (std::find(out.begin(), out.end(), *lab) == out.end())
            out.push_back(*lab);
    }
    return out;
}

}  // namespace voyager::core
