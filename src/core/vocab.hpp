/**
 * @file
 * Voyager's hierarchical vocabulary (paper §4.2-4.3): addresses are
 * decomposed into page tokens and offset tokens; addresses that occur
 * fewer than `min_addr_freq` times are represented as (page-delta,
 * offset-delta) tokens instead, which lets the model prefetch
 * compulsory misses. Infrequent addresses are found by a profiling
 * pass over the training prefix, as in the paper.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/prefetcher.hpp"
#include "util/flat_hash.hpp"
#include "util/types.hpp"

namespace voyager::core {

using sim::LlcAccess;

/** Vocabulary construction knobs. */
struct VocabConfig
{
    /** Addresses seen fewer times than this become delta tokens. */
    std::uint64_t min_addr_freq = 2;
    /** How many distinct page deltas get tokens (paper: ~10). */
    std::size_t max_page_deltas = 10;
    /** Master switch for the delta vocabulary (§4.3 ablation). */
    bool use_deltas = true;
};

/** Token-ids of one access under the hierarchical vocabulary. */
struct Token
{
    std::int32_t pc = 0;
    std::int32_t page = 0;    ///< absolute page token or delta token
    std::int32_t offset = 0;  ///< [0,64) absolute or 64+ delta token
    bool is_delta = false;
};

/**
 * The hierarchical (page, offset, PC) vocabulary.
 *
 * Token spaces:
 *  - PC:     0 = OOV, then one id per distinct PC.
 *  - page:   0 = OOV, ids [1, num_real_pages] are absolute pages,
 *            then one id per admitted page delta ('d'-marked entries).
 *  - offset: [0, 64) absolute line offsets, [64, 191) are offset
 *            deltas (delta + 63 + 64), so decode is closed-form.
 */
class Vocabulary
{
  public:
    /** Offset-token space size: 64 absolute + 127 delta values. */
    static constexpr std::int32_t kOffsetTokens = 64 + 127;
    static constexpr std::int32_t kOovPage = 0;
    static constexpr std::int32_t kOovPc = 0;

    /** Profile `stream` and build the vocabulary. */
    static Vocabulary build(const std::vector<LlcAccess> &stream,
                            const VocabConfig &cfg = {});

    /**
     * Encode an access. `prev_line` is the preceding access's line
     * (used for the delta representation); pass std::nullopt at t=0.
     */
    Token encode(Addr pc, Addr line,
                 std::optional<Addr> prev_line) const;

    /**
     * Decode a (page, offset) token pair into a line address.
     * Delta tokens are resolved against `prev_line`. Returns nullopt
     * for OOV pages or offset deltas that leave the page.
     */
    std::optional<Addr> decode(std::int32_t page_token,
                               std::int32_t offset_token,
                               Addr prev_line) const;

    std::int32_t num_pc_tokens() const
    {
        return static_cast<std::int32_t>(pc_ids_.size()) + 1;
    }
    std::int32_t num_page_tokens() const
    {
        return static_cast<std::int32_t>(pages_.size() +
                                         page_deltas_.size()) + 1;
    }
    std::int32_t num_offset_tokens() const { return kOffsetTokens; }
    std::size_t num_real_pages() const { return pages_.size(); }
    std::size_t num_page_delta_tokens() const
    {
        return page_deltas_.size();
    }

    /** True if the page token is a delta ('d'-marked) entry. */
    bool
    is_delta_page_token(std::int32_t t) const
    {
        return t > static_cast<std::int32_t>(pages_.size());
    }

    /** Admitted page deltas in token order (most frequent first). */
    const std::vector<std::int64_t> &page_deltas() const
    {
        return page_deltas_;
    }

    /**
     * Warm the infrequent-line filter for an upcoming encode of
     * `line`. Callers that walk a known stream (encode_stream) issue
     * this a few accesses ahead so the filter probe — the first
     * table encode() touches, and usually a miss, since the frequent
     * majority of lines is absent by design — never stalls. Tag-only:
     * see FlatHashSet::prefetch_tag.
     */
    void
    prefetch_line(Addr line) const
    {
        infrequent_lines_.prefetch_tag(line);
    }

    const VocabConfig &config() const { return cfg_; }

  private:
    VocabConfig cfg_;
    FlatHashMap<Addr, std::int32_t> pc_ids_;
    FlatHashMap<Addr, std::int32_t> page_ids_;  ///< page -> token
    std::vector<Addr> pages_;                   ///< token-1 -> page
    FlatHashMap<std::int64_t, std::int32_t> page_delta_ids_;
    std::vector<std::int64_t> page_deltas_;
    /**
     * Lines too rare for absolute tokens (paper §4.3). Missing means
     * frequent, so only the infrequent minority is stored.
     */
    FlatHashSet<Addr> infrequent_lines_;
};

/** Per-access token ids for a whole stream, precomputed once. */
struct EncodedStream
{
    std::vector<std::int32_t> pc;
    std::vector<std::int32_t> page;
    std::vector<std::int32_t> offset;
    std::vector<Addr> line;
    std::vector<std::uint8_t> is_load;

    std::size_t size() const { return line.size(); }
};

/** Encode every access of a stream with the vocabulary. */
EncodedStream encode_stream(const std::vector<LlcAccess> &stream,
                            const Vocabulary &vocab);

}  // namespace voyager::core
