/**
 * @file
 * TabularTable implementation: layered context tables compiled from
 * teacher predictions (DESIGN.md §5.18).
 */
#include "core/tabular.hpp"

#include <algorithm>
#include <cassert>

namespace voyager::core {

namespace {

/** Frequencies saturate here; CLOCK halving then needs at most eight
 *  sweeps over a victim before it reaches zero. */
constexpr std::uint32_t kMaxFreq = 255;

}  // namespace

TabularTable::TabularTable(const TabularConfig &cfg)
    : cfg_(cfg),
      degree_(std::min<std::uint32_t>(cfg.degree ? cfg.degree : 1,
                                      kMaxDegree))
{
    l1_.history = std::max<std::size_t>(cfg_.l1_history, 1);
    // The backoff level must be strictly shorter than L1; a zero
    // length (possible when l1_history == 1) disables it.
    l2_.history = std::min(cfg_.l2_history, l1_.history - 1);

    const std::uint64_t per_entry = entry_bytes();
    std::uint64_t l2_budget = 0;
    if (l2_.history > 0) {
        const double f =
            std::clamp(cfg_.l2_budget_fraction, 0.0, 0.9);
        l2_budget = static_cast<std::uint64_t>(
            static_cast<double>(cfg_.budget_bytes) * f);
    }
    const std::uint64_t l1_budget = cfg_.budget_bytes - l2_budget;
    // Strict budget: a level too small for even one entry stays
    // empty and every probe against it misses.
    l1_.max_entries = l1_budget / per_entry;
    l2_.max_entries =
        l2_.history > 0 ? l2_budget / per_entry : 0;
    l1_.ring.reserve(l1_.max_entries);
    l2_.ring.reserve(l2_.max_entries);
    l1_.table.reserve(l1_.max_entries);
    if (l2_.max_entries > 0)
        l2_.table.reserve(l2_.max_entries);
}

std::uint64_t
TabularTable::context_key(std::size_t history, std::int32_t pc,
                          const std::int32_t *page,
                          const std::int32_t *offset,
                          std::size_t n) const
{
    // Salt the chain with the history length so L1 and L2 keys for
    // the same window never collide by construction.
    std::uint64_t k = flat_detail::mix64(
        0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(history + 1));
    const std::size_t start = n > history ? n - history : 0;
    for (std::size_t i = start; i < n; ++i) {
        const std::uint64_t tok =
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(page[i]))
             << 32) |
            static_cast<std::uint32_t>(offset[i]);
        k = flat_detail::mix64(k ^ tok);
    }
    if (cfg_.use_pc)
        k = flat_detail::mix64(
            k ^ (static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(pc)) |
                 0x94d049bb13311100ull));
    return k;
}

void
TabularTable::vote(Entry &e,
                   const std::vector<TokenPrediction> &teacher) const
{
    const std::size_t ranks = teacher.size();
    for (std::size_t r = 0; r < ranks; ++r) {
        const auto &t = teacher[r];
        const std::uint16_t w =
            static_cast<std::uint16_t>(ranks - r);
        const std::int16_t off = static_cast<std::int16_t>(t.offset);
        // Existing candidate: saturating vote bump.
        std::size_t slot = e.n;
        for (std::size_t s = 0; s < e.n; ++s) {
            if (e.cand[s].page == t.page && e.cand[s].offset == off) {
                slot = s;
                break;
            }
        }
        if (slot < e.n) {
            const std::uint32_t sum = e.cand[slot].weight + w;
            e.cand[slot].weight = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(sum, 0xffff));
            continue;
        }
        // Free slot, or Misra-Gries style replacement: a newcomer
        // whose rank weight beats the weakest incumbent takes its
        // slot; otherwise the weakest incumbent just decays.
        if (e.n < degree_) {
            e.cand[e.n] = {t.page, off, w};
            ++e.n;
            continue;
        }
        std::size_t weakest = 0;
        for (std::size_t s = 1; s < e.n; ++s)
            if (e.cand[s].weight < e.cand[weakest].weight)
                weakest = s;
        if (e.cand[weakest].weight < w)
            e.cand[weakest] = {t.page, off, w};
        else if (e.cand[weakest].weight > 0)
            --e.cand[weakest].weight;
    }
}

void
TabularTable::observe_level(Level &lvl, std::uint64_t key,
                            const std::vector<TokenPrediction> &teacher)
{
    if (lvl.max_entries == 0)
        return;
    auto it = lvl.table.find(key);
    if (it != lvl.table.end()) {
        it->second.freq = std::min(it->second.freq + 1, kMaxFreq);
        vote(it->second, teacher);
        return;
    }
    if (lvl.table.size() < lvl.max_entries) {
        auto [nit, fresh] = lvl.table.emplace(key);
        assert(fresh);
        nit->second.freq = 1;
        vote(nit->second, teacher);
        lvl.ring.push_back(key);
        ++lvl.admits;
        return;
    }
    // Table full: CLOCK sweep with frequency aging. Each visit halves
    // the pointed entry's frequency; the first entry that reaches
    // zero is evicted and the newcomer reuses its ring slot, so
    // recurring contexts survive while one-shot contexts recycle.
    for (;;) {
        if (lvl.clock >= lvl.ring.size())
            lvl.clock = 0;
        auto vit = lvl.table.find(lvl.ring[lvl.clock]);
        assert(vit != lvl.table.end());
        vit->second.freq >>= 1;
        if (vit->second.freq == 0) {
            lvl.table.erase(lvl.ring[lvl.clock]);
            auto [nit, fresh] = lvl.table.emplace(key);
            assert(fresh);
            nit->second.freq = 1;
            vote(nit->second, teacher);
            lvl.ring[lvl.clock] = key;
            ++lvl.clock;
            ++lvl.admits;
            ++lvl.evictions;
            return;
        }
        ++lvl.clock;
    }
}

void
TabularTable::observe(std::int32_t pc, const std::int32_t *page,
                      const std::int32_t *offset, std::size_t n,
                      const std::vector<TokenPrediction> &teacher)
{
    if (n == 0 || teacher.empty())
        return;
    ++observations_;
    observe_level(l1_, context_key(l1_.history, pc, page, offset, n),
                  teacher);
    if (l2_.max_entries > 0)
        observe_level(l2_,
                      context_key(l2_.history, pc, page, offset, n),
                      teacher);
}

TabularTable::ProbeLevel
TabularTable::probe(std::int32_t pc, const std::int32_t *page,
                    const std::int32_t *offset, std::size_t n,
                    std::vector<TokenPrediction> &out) const
{
    out.clear();
    if (n == 0)
        return ProbeLevel::Miss;
    const Entry *e = nullptr;
    ProbeLevel lvl = ProbeLevel::Miss;
    auto it = l1_.table.find(
        context_key(l1_.history, pc, page, offset, n));
    if (it != l1_.table.end()) {
        e = &it->second;
        lvl = ProbeLevel::L1;
    } else if (l2_.max_entries > 0) {
        auto it2 = l2_.table.find(
            context_key(l2_.history, pc, page, offset, n));
        if (it2 != l2_.table.end()) {
            e = &it2->second;
            lvl = ProbeLevel::L2;
        }
    }
    if (e == nullptr)
        return ProbeLevel::Miss;
    out.reserve(e->n);
    for (std::size_t s = 0; s < e->n; ++s)
        out.push_back({e->cand[s].page, e->cand[s].offset,
                       static_cast<float>(e->cand[s].weight)});
    std::sort(out.begin(), out.end(),
              [](const TokenPrediction &a, const TokenPrediction &b) {
                  if (a.prob != b.prob)
                      return a.prob > b.prob;
                  if (a.page != b.page)
                      return a.page < b.page;
                  return a.offset < b.offset;
              });
    return lvl;
}

std::uint64_t
TabularTable::storage_bytes() const
{
    return (l1_.table.size() + l2_.table.size()) * entry_bytes();
}

void
TabularTable::export_stats(StatRegistry &reg) const
{
    reg.counter("distill.table.budget_bytes") = cfg_.budget_bytes;
    reg.counter("distill.table.bytes") = storage_bytes();
    reg.counter("distill.table.entry_bytes") = entry_bytes();
    reg.counter("distill.table.observations") = observations_;
    reg.counter("distill.table.l1_entries") = l1_.table.size();
    reg.counter("distill.table.l1_capacity") = l1_.max_entries;
    reg.counter("distill.table.l1_admits") = l1_.admits;
    reg.counter("distill.table.l1_evictions") = l1_.evictions;
    reg.counter("distill.table.l2_entries") = l2_.table.size();
    reg.counter("distill.table.l2_capacity") = l2_.max_entries;
    reg.counter("distill.table.l2_admits") = l2_.admits;
    reg.counter("distill.table.l2_evictions") = l2_.evictions;
}

TabularTable
distill_to_table(const EncodedStream &encoded,
                 const std::vector<std::size_t> &indices,
                 const std::vector<std::vector<TokenPrediction>> &teacher,
                 std::size_t seq_len, const TabularConfig &cfg)
{
    assert(indices.size() == teacher.size());
    TabularTable table(cfg);
    for (std::size_t j = 0; j < indices.size(); ++j) {
        const std::size_t i = indices[j];
        assert(i + 1 >= seq_len && i < encoded.size());
        const std::size_t start = i + 1 - seq_len;
        table.observe(encoded.pc[i], encoded.page.data() + start,
                      encoded.offset.data() + start, seq_len,
                      teacher[j]);
    }
    return table;
}

}  // namespace voyager::core
