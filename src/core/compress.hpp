/**
 * @file
 * Model compression pipeline (paper §5.4): magnitude-prune 80% of the
 * weights, quantize to int8, and account the storage at each stage.
 * The compressed model keeps running through the ordinary float
 * kernels (quantize-dequantize), so accuracy after compression can be
 * re-measured directly.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace voyager::core {

/** Storage accounting of one model at each compression stage. */
struct CompressionReport
{
    std::uint64_t params = 0;
    std::uint64_t dense_fp32_bytes = 0;
    std::uint64_t pruned_fp32_bytes = 0;     ///< sparse, 32-bit values
    std::uint64_t pruned_int8_bytes = 0;     ///< sparse, 8-bit values
    double sparsity = 0.0;                   ///< fraction pruned
    float max_quant_error = 0.0f;
    /** RMS quantization error over every weight element. */
    double rms_quant_error = 0.0;
};

/** Compression knobs (paper: 80% pruning, int8). */
struct CompressConfig
{
    double prune_sparsity = 0.8;
    bool quantize_int8 = true;
    /** Heads/LSTM kept denser than embeddings if set below sparsity. */
    double dense_layer_sparsity = 0.5;
};

/**
 * Prune + quantize the model in place and report storage at each
 * stage. Embedding tables are pruned at `prune_sparsity`; LSTM/head
 * weights at `dense_layer_sparsity` (they are small but sensitive).
 * Quantization is symmetric per-channel on the same int8 grid as
 * QMatrix — per-row for embeddings and bias vectors, per-output-
 * channel (column) for 2-D weights — so a QuantizedVoyagerModel
 * built from the compressed model executes the identical weights.
 */
CompressionReport compress_model(VoyagerModel &model,
                                 const CompressConfig &cfg = {});

/**
 * Storage a conventional temporal prefetcher needs for the same
 * stream, for the Fig. 17 comparison: entries x bytes-per-entry.
 */
std::uint64_t temporal_prefetcher_bytes(std::uint64_t distinct_lines,
                                        std::uint64_t bytes_per_entry = 12);

}  // namespace voyager::core
