#include "core/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <sstream>

#include "util/fault_injection.hpp"
#include "util/health.hpp"
#include "util/random.hpp"

namespace voyager::core {

namespace {

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

void
SequenceModel::save_state(std::ostream &) const
{
    throw CheckpointError(name() + " does not support checkpointing");
}

void
SequenceModel::load_state(std::istream &)
{
    throw CheckpointError(name() + " does not support checkpointing");
}

HealthVerdict
HealthMonitor::check(double loss, const SequenceModel &model)
{
    ++health_stats().checks;
    if (!std::isfinite(loss)) {
        ++health_stats().nonfinite_loss;
        return HealthVerdict::NonFiniteLoss;
    }
    bool spiked = loss > cfg_.divergence_loss;
    if (!spiked && !baseline_.empty() && loss > cfg_.min_spike_loss) {
        double mean = 0.0;
        for (const double l : baseline_)
            mean += l;
        mean /= static_cast<double>(baseline_.size());
        spiked = loss > cfg_.loss_spike_factor * mean;
    }
    if (spiked) {
        ++health_stats().loss_spikes;
        return HealthVerdict::LossSpike;
    }
    if (!model.state_finite()) {
        ++health_stats().nonfinite_state;
        return HealthVerdict::NonFiniteState;
    }
    baseline_.push_back(loss);
    if (baseline_.size() > cfg_.baseline_window)
        baseline_.erase(baseline_.begin());
    return HealthVerdict::Healthy;
}

void
OnlineResult::export_stats(StatRegistry &reg,
                           const std::string &prefix) const
{
    reg.counter(prefix + ".samples.trained") = trained_samples;
    reg.counter(prefix + ".samples.predicted") = predicted_samples;
    reg.counter(prefix + ".first_predicted_index") =
        first_predicted_index;
    reg.counter(prefix + ".epochs") = epoch_losses.size();
    for (std::size_t e = 0; e < epoch_losses.size(); ++e)
        reg.gauge(prefix + ".epoch" + std::to_string(e) + ".loss") =
            epoch_losses[e];
    if (!epoch_losses.empty())
        reg.gauge(prefix + ".final_loss") = epoch_losses.back();
    RunningStat &loss = reg.running(prefix + ".epoch_loss");
    if (loss.count() == 0)
        for (const double l : epoch_losses)
            loss.add(l);
    reg.counter(prefix + ".degraded") = degraded ? 1 : 0;
    reg.counter(prefix + ".rollbacks") = rollbacks;
    reg.counter(prefix + ".skipped_steps") = skipped_steps;
    reg.gauge(prefix + ".train_seconds", true) = train_seconds;
    reg.gauge(prefix + ".inference_seconds", true) = inference_seconds;
}

OnlineResult
train_online(SequenceModel &model, std::size_t stream_size,
             const OnlineTrainConfig &cfg)
{
    return train_online(model, stream_size, cfg, CheckpointConfig{});
}

OnlineResult
train_online(SequenceModel &model, std::size_t stream_size,
             const OnlineTrainConfig &cfg, const CheckpointConfig &ckpt)
{
    OnlineResult res;
    res.predictions.assign(stream_size, {});
    if (stream_size == 0 || cfg.epochs == 0)
        return res;

    // Balanced partition: ceil-division sized every epoch at
    // ceil(n/E), so whenever stream_size % epochs != 0 the final
    // epoch(s) came up empty and their inference slice was silently
    // skipped. Give every epoch floor(n/E) samples and spread the
    // remainder over the first n % E epochs; if the stream is shorter
    // than the epoch count, run one epoch per sample.
    const std::size_t n_epochs = std::min(cfg.epochs, stream_size);
    const std::size_t base = stream_size / n_epochs;
    const std::size_t extra = stream_size % n_epochs;
    const auto epoch_begin = [base, extra](std::size_t e) {
        return e * base + std::min(e, extra);
    };
    res.first_predicted_index =
        n_epochs > 1 ? epoch_begin(1) : stream_size;

    Rng rng(cfg.seed);
    std::size_t start_epoch = 0;
    if (ckpt.enabled() && ckpt.resume) {
        if (const auto resumed = try_resume_training(
                ckpt.path, model, cfg, stream_size, rng, res)) {
            start_epoch = *resumed;
        }
    }
    const std::size_t every =
        std::max<std::size_t>(1, ckpt.every_epochs);

    HealthMonitor monitor(cfg.health);
    // `health.skipped_steps` is process-wide; report this run's share.
    const std::uint64_t skipped_before = health_stats().skipped_steps;
    const auto finish = [&skipped_before](OnlineResult &r) {
        r.skipped_steps =
            health_stats().skipped_steps - skipped_before;
    };

    for (std::size_t e = start_epoch; e < n_epochs; ++e) {
        const std::size_t begin = epoch_begin(e);
        const std::size_t end = epoch_begin(e + 1);
        assert(begin < end && "every epoch must be non-empty");
        std::vector<std::size_t> indices;
        indices.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i)
            indices.push_back(i);

        // Inference first: the model has only seen epochs < e.
        if (e > 0) {
            const auto t0 = std::chrono::steady_clock::now();
            auto preds = model.predict_on(indices, cfg.degree);
            res.inference_seconds += seconds_since(t0);
            assert(preds.size() == indices.size());
            for (std::size_t k = 0; k < indices.size(); ++k)
                res.predictions[indices[k]] = std::move(preds[k]);
            res.predicted_samples += indices.size();
        }

        // Then train on this epoch (or, cumulatively, on everything
        // seen so far) under the watchdog: an unhealthy verdict rolls
        // model and RNG back to the pre-epoch snapshot, backs off the
        // LR and retries; exhausting max_retries (or lacking snapshot
        // support) degrades the run and returns early (§5.14).
        std::string snapshot;
        bool have_snapshot = false;
        const RngState rng_before = rng.state();
        if (cfg.health.enabled) {
            try {
                std::ostringstream snap;
                model.save_state(snap);
                snapshot = std::move(snap).str();
                have_snapshot = true;
            } catch (const CheckpointError &) {
                // No snapshot support: any unhealthy epoch degrades
                // immediately instead of rolling back.
            }
        }
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t attempt = 0;; ++attempt) {
            std::vector<std::size_t> train_idx;
            if (cfg.cumulative) {
                train_idx.reserve(end);
                for (std::size_t i = 0; i < end; ++i)
                    train_idx.push_back(i);
            } else {
                train_idx = indices;
            }
            if (cfg.max_train_samples_per_epoch > 0 &&
                train_idx.size() > cfg.max_train_samples_per_epoch) {
                rng.shuffle(train_idx);
                train_idx.resize(cfg.max_train_samples_per_epoch);
                std::sort(train_idx.begin(), train_idx.end());
            }
            double loss = 0.0;
            for (std::size_t pass = 0; pass < cfg.train_passes;
                 ++pass) {
                loss = model.train_on(train_idx);
                res.trained_samples += train_idx.size();
            }
            loss = fault_injector().on_epoch_loss(e, loss);
            if (!cfg.health.enabled ||
                monitor.check(loss, model) == HealthVerdict::Healthy) {
                res.epoch_losses.push_back(loss);
                // The backoff is scoped to the retries: once the
                // epoch passes the health check, later epochs resume
                // at the configured rate (a recurrence next epoch
                // rolls back again). backoff^-(attempt-1) exactly
                // undoes the backoff^(attempt-1) in effect on this
                // attempt.
                if (attempt > 1)
                    model.scale_lr(
                        std::pow(cfg.health.lr_backoff,
                                 -static_cast<double>(attempt - 1)));
                break;
            }
            if (attempt >= cfg.health.max_retries || !have_snapshot) {
                res.degraded = true;
                ++health_stats().degraded_runs;
                res.train_seconds += seconds_since(t0);
                finish(res);
                return res;
            }
            std::istringstream snap(snapshot);
            model.load_state(snap);
            rng.set_state(rng_before);
            // First retry replays the epoch unchanged — a transient
            // fault (the common case) is gone on replay, and the
            // clean-retry result matches an unfaulted run exactly.
            // Later retries progressively back the LR off; load_state
            // restored the snapshot LR, so apply it after.
            if (attempt > 0) {
                model.scale_lr(std::pow(cfg.health.lr_backoff,
                                        static_cast<double>(attempt)));
                ++health_stats().lr_backoffs;
            }
            ++res.rollbacks;
            ++health_stats().rollbacks;
        }
        res.train_seconds += seconds_since(t0);
        model.on_epoch_end();

        // Checkpoint at the completed-epoch boundary: grads are
        // cleared by the optimizer step, so weights + moments + RNG +
        // cursor are the entire training state.
        const std::size_t done = e + 1;
        const bool stop = ckpt.stop_after_epochs > 0 &&
                          done >= ckpt.stop_after_epochs;
        if (ckpt.enabled() && done < n_epochs &&
            (stop || done % every == 0)) {
            save_training_checkpoint(ckpt.path, model, cfg,
                                     stream_size, done, rng, res);
        }
        if (stop) {
            finish(res);
            return res;
        }
    }
    finish(res);
    return res;
}

OnlineResult
train_offline(SequenceModel &model, std::size_t stream_size,
              double train_fraction, const OnlineTrainConfig &cfg)
{
    OnlineResult res;
    res.predictions.assign(stream_size, {});
    if (stream_size == 0)
        return res;
    const auto split = static_cast<std::size_t>(
        train_fraction * static_cast<double>(stream_size));
    res.first_predicted_index = split;

    std::vector<std::size_t> train_idx(split);
    for (std::size_t i = 0; i < split; ++i)
        train_idx[i] = i;
    Rng rng(cfg.seed);
    if (cfg.max_train_samples_per_epoch > 0 &&
        train_idx.size() > cfg.max_train_samples_per_epoch) {
        rng.shuffle(train_idx);
        train_idx.resize(cfg.max_train_samples_per_epoch);
        std::sort(train_idx.begin(), train_idx.end());
    }

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t e = 0; e < cfg.epochs; ++e) {
        double loss = 0.0;
        for (std::size_t pass = 0; pass < cfg.train_passes; ++pass) {
            loss = model.train_on(train_idx);
            res.trained_samples += train_idx.size();
        }
        res.epoch_losses.push_back(loss);
        model.on_epoch_end();
    }
    res.train_seconds = seconds_since(t0);

    std::vector<std::size_t> test_idx;
    test_idx.reserve(stream_size - split);
    for (std::size_t i = split; i < stream_size; ++i)
        test_idx.push_back(i);
    const auto t1 = std::chrono::steady_clock::now();
    auto preds = model.predict_on(test_idx, cfg.degree);
    res.inference_seconds = seconds_since(t1);
    for (std::size_t k = 0; k < test_idx.size(); ++k)
        res.predictions[test_idx[k]] = std::move(preds[k]);
    res.predicted_samples = test_idx.size();
    return res;
}

// ---------------------------------------------------------------------
// VoyagerAdapter
// ---------------------------------------------------------------------

VoyagerAdapter::VoyagerAdapter(const VoyagerConfig &cfg,
                               const std::vector<LlcAccess> &stream,
                               const VocabConfig &vocab_cfg,
                               const LabelerConfig &labeler_cfg)
    : cfg_(cfg), stream_(stream),
      vocab_(Vocabulary::build(stream, vocab_cfg)),
      encoded_(encode_stream(stream, vocab_)),
      labels_(compute_labels(stream, labeler_cfg)),
      model_(cfg, vocab_.num_pc_tokens(), vocab_.num_page_tokens(),
             vocab_.num_offset_tokens())
{
}

void
VoyagerAdapter::fill_histories(const std::vector<std::size_t> &indices,
                               VoyagerBatch &batch) const
{
    const std::size_t T = cfg_.seq_len;
    batch.batch = indices.size();
    batch.seq = T;
    batch.pc.resize(indices.size() * T);
    batch.page.resize(indices.size() * T);
    batch.offset.resize(indices.size() * T);
    for (std::size_t b = 0; b < indices.size(); ++b) {
        const std::size_t i = indices[b];
        assert(i + 1 >= T && i < encoded_.size());
        for (std::size_t t = 0; t < T; ++t) {
            const std::size_t s = i + 1 - T + t;
            batch.pc[b * T + t] = encoded_.pc[s];
            batch.page[b * T + t] = encoded_.page[s];
            batch.offset[b * T + t] = encoded_.offset[s];
        }
    }
}

bool
VoyagerAdapter::sample_labels(std::size_t i,
                              std::vector<TokenLabel> &labels) const
{
    labels.clear();
    const Addr prev_line = stream_[i].line;
    for (const Addr lab : distinct_labels(labels_[i], cfg_.schemes)) {
        const Token t = vocab_.encode(/*pc=*/0, lab, prev_line);
        if (t.page == Vocabulary::kOovPage)
            continue;
        const TokenLabel tl{t.page, t.offset};
        if (std::find(labels.begin(), labels.end(), tl) == labels.end())
            labels.push_back(tl);
    }
    return !labels.empty();
}

double
VoyagerAdapter::train_on(const std::vector<std::size_t> &indices)
{
    const std::size_t bs = cfg_.batch_size;
    std::vector<std::size_t> usable;
    usable.reserve(indices.size());
    std::vector<TokenLabel> labels;
    for (const std::size_t i : indices) {
        if (i + 1 < cfg_.seq_len || i >= stream_.size())
            continue;
        usable.push_back(i);
    }

    double loss_sum = 0.0;
    std::size_t batches = 0;
    VoyagerBatch batch;
    std::vector<std::size_t> chunk;
    for (std::size_t pos = 0; pos < usable.size(); pos += bs) {
        chunk.clear();
        batch.labels.clear();
        for (std::size_t k = pos;
             k < std::min(usable.size(), pos + bs); ++k) {
            if (!sample_labels(usable[k], labels))
                continue;  // nothing representable to learn
            chunk.push_back(usable[k]);
            batch.labels.push_back(labels);
        }
        if (chunk.empty())
            continue;
        fill_histories(chunk, batch);
        loss_sum += model_.train_step(batch);
        ++batches;
    }
    return batches ? loss_sum / static_cast<double>(batches) : 0.0;
}

std::vector<std::vector<Addr>>
VoyagerAdapter::predict_on(const std::vector<std::size_t> &indices,
                           std::uint32_t degree)
{
    std::vector<std::vector<Addr>> out(indices.size());
    const std::size_t bs = cfg_.batch_size;
    VoyagerBatch batch;
    std::vector<std::size_t> chunk;
    std::vector<std::size_t> chunk_slots;
    for (std::size_t pos = 0; pos < indices.size(); pos += bs) {
        chunk.clear();
        chunk_slots.clear();
        for (std::size_t k = pos;
             k < std::min(indices.size(), pos + bs); ++k) {
            if (indices[k] + 1 < cfg_.seq_len ||
                indices[k] >= stream_.size())
                continue;
            chunk.push_back(indices[k]);
            chunk_slots.push_back(k);
        }
        if (chunk.empty())
            continue;
        fill_histories(chunk, batch);
        // Over-fetch candidates so OOV/undecodable ones can be skipped.
        const auto preds = predict_tokens(batch, degree + 2);
        for (std::size_t b = 0; b < chunk.size(); ++b) {
            const Addr prev_line = stream_[chunk[b]].line;
            auto &slot = out[chunk_slots[b]];
            for (const auto &p : preds[b]) {
                if (slot.size() >= degree)
                    break;
                const auto line =
                    vocab_.decode(p.page, p.offset, prev_line);
                if (!line)
                    continue;
                if (std::find(slot.begin(), slot.end(), *line) ==
                    slot.end())
                    slot.push_back(*line);
            }
        }
    }
    return out;
}

std::vector<std::vector<TokenPrediction>>
VoyagerAdapter::predict_token_candidates(
    const std::vector<std::size_t> &indices, std::size_t k)
{
    std::vector<std::vector<TokenPrediction>> out(indices.size());
    const std::size_t bs = cfg_.batch_size;
    VoyagerBatch batch;
    std::vector<std::size_t> chunk;
    std::vector<std::size_t> chunk_slots;
    for (std::size_t pos = 0; pos < indices.size(); pos += bs) {
        chunk.clear();
        chunk_slots.clear();
        for (std::size_t j = pos;
             j < std::min(indices.size(), pos + bs); ++j) {
            if (indices[j] + 1 < cfg_.seq_len ||
                indices[j] >= stream_.size())
                continue;
            chunk.push_back(indices[j]);
            chunk_slots.push_back(j);
        }
        if (chunk.empty())
            continue;
        fill_histories(chunk, batch);
        auto preds = predict_tokens(batch, k);
        for (std::size_t b = 0; b < chunk.size(); ++b)
            out[chunk_slots[b]] = std::move(preds[b]);
    }
    return out;
}

// ---------------------------------------------------------------------
// DeltaLstmAdapter
// ---------------------------------------------------------------------

DeltaLstmAdapter::DeltaLstmAdapter(const DeltaLstmConfig &cfg,
                                   const std::vector<LlcAccess> &stream)
    : cfg_(cfg), stream_(stream),
      vocab_(DeltaVocab::build(stream, cfg.max_deltas))
{
    // Precompute per-transition delta tokens and PC ids.
    delta_tokens_.assign(stream.size(), 0);
    pc_tokens_.assign(stream.size(), 0);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        if (i > 0) {
            const std::int64_t d =
                static_cast<std::int64_t>(stream[i].line) -
                static_cast<std::int64_t>(stream[i - 1].line);
            delta_tokens_[i] = vocab_.encode(d);
        }
        auto [it, inserted] = pc_ids_.try_emplace(
            stream[i].pc, static_cast<std::int32_t>(pc_ids_.size()) + 1);
        pc_tokens_[i] = it->second;
    }
    model_ = std::make_unique<DeltaLstmModel>(
        cfg_, static_cast<std::int32_t>(pc_ids_.size()) + 1,
        vocab_.size());
}

void
DeltaLstmAdapter::fill_histories(const std::vector<std::size_t> &indices,
                                 DeltaBatch &batch) const
{
    const std::size_t T = cfg_.seq_len;
    batch.batch = indices.size();
    batch.seq = T;
    batch.pc.resize(indices.size() * T);
    batch.delta.resize(indices.size() * T);
    for (std::size_t b = 0; b < indices.size(); ++b) {
        const std::size_t i = indices[b];
        for (std::size_t t = 0; t < T; ++t) {
            const std::size_t s = i + 1 - T + t;
            batch.pc[b * T + t] = pc_tokens_[s];
            batch.delta[b * T + t] = delta_tokens_[s];
        }
    }
}

double
DeltaLstmAdapter::train_on(const std::vector<std::size_t> &indices)
{
    const std::size_t bs = cfg_.batch_size;
    double loss_sum = 0.0;
    std::size_t batches = 0;
    DeltaBatch batch;
    std::vector<std::size_t> chunk;
    for (std::size_t pos = 0; pos < indices.size(); pos += bs) {
        chunk.clear();
        batch.labels.clear();
        for (std::size_t k = pos;
             k < std::min(indices.size(), pos + bs); ++k) {
            const std::size_t i = indices[k];
            if (i < cfg_.seq_len || i + 1 >= stream_.size())
                continue;
            const std::int32_t label = delta_tokens_[i + 1];
            if (label == 0)
                continue;  // next delta outside the vocabulary
            chunk.push_back(i);
            batch.labels.push_back(label);
        }
        if (chunk.empty())
            continue;
        fill_histories(chunk, batch);
        loss_sum += model_->train_step(batch);
        ++batches;
    }
    return batches ? loss_sum / static_cast<double>(batches) : 0.0;
}

std::vector<std::vector<Addr>>
DeltaLstmAdapter::predict_on(const std::vector<std::size_t> &indices,
                             std::uint32_t degree)
{
    std::vector<std::vector<Addr>> out(indices.size());
    const std::size_t bs = cfg_.batch_size;
    DeltaBatch batch;
    std::vector<std::size_t> chunk;
    std::vector<std::size_t> chunk_slots;
    for (std::size_t pos = 0; pos < indices.size(); pos += bs) {
        chunk.clear();
        chunk_slots.clear();
        for (std::size_t k = pos;
             k < std::min(indices.size(), pos + bs); ++k) {
            if (indices[k] < cfg_.seq_len ||
                indices[k] >= stream_.size())
                continue;
            chunk.push_back(indices[k]);
            chunk_slots.push_back(k);
        }
        if (chunk.empty())
            continue;
        fill_histories(chunk, batch);
        const auto preds = model_->predict(batch, degree + 1);
        for (std::size_t b = 0; b < chunk.size(); ++b) {
            const Addr cur = stream_[chunk[b]].line;
            auto &slot = out[chunk_slots[b]];
            for (const auto &[tok, prob] : preds[b]) {
                if (slot.size() >= degree)
                    break;
                const auto d = vocab_.decode(tok);
                if (!d)
                    continue;
                slot.push_back(static_cast<Addr>(
                    static_cast<std::int64_t>(cur) + *d));
            }
        }
    }
    return out;
}

}  // namespace voyager::core
