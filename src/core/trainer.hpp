/**
 * @file
 * Online training protocol (paper §5.1): the stream is cut into
 * epochs; the model trained through epoch i-1 produces predictions for
 * epoch i, then trains on epoch i. No inference happens in epoch 0.
 *
 * SequenceModel adapters bind the token-level networks (Voyager,
 * Delta-LSTM) to an LLC access stream: they own the vocabulary, the
 * label streams and the decode step back to line addresses.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/delta_lstm.hpp"
#include "core/labeler.hpp"
#include "core/model.hpp"
#include "core/qmodel.hpp"
#include "core/vocab.hpp"
#include "sim/prefetcher.hpp"
#include "util/stat_registry.hpp"

namespace voyager::core {

/** Stream-index-level model interface used by the online trainer. */
class SequenceModel
{
  public:
    virtual ~SequenceModel() = default;

    virtual std::string name() const = 0;

    /** One training pass over the given prediction points. */
    virtual double train_on(const std::vector<std::size_t> &indices) = 0;

    /** Top-`degree` predicted lines per prediction point. */
    virtual std::vector<std::vector<Addr>>
    predict_on(const std::vector<std::size_t> &indices,
               std::uint32_t degree) = 0;

    /** Called at each epoch boundary (e.g. LR decay). */
    virtual void on_epoch_end() {}

    /** fp32 model size. */
    virtual std::uint64_t parameter_bytes() const = 0;

    /**
     * Serialize the complete training state (weights, optimizer
     * moments, RNG streams) for checkpointing. The default throws
     * CheckpointError: models without an override cannot checkpoint.
     */
    virtual void save_state(std::ostream &os) const;

    /** Restore state saved by save_state. @throws on mismatch. */
    virtual void load_state(std::istream &is);

    /** Cheap finite-ness sweep over the trainable state, used by the
     *  HealthMonitor. The default reports healthy. */
    virtual bool state_finite() const { return true; }

    /** Multiply the optimizer learning rate (recovery backoff). The
     *  default is a no-op for models without an optimizer handle. */
    virtual void scale_lr(double /*factor*/) {}
};

/** Watchdog thresholds and recovery policy (DESIGN.md §5.14). */
struct HealthConfig
{
    /** Master switch; off restores the pre-watchdog trainer. */
    bool enabled = true;
    /** Spike = loss > factor x rolling baseline mean... */
    double loss_spike_factor = 8.0;
    /** ...but only when it also exceeds this floor, so the noisy
     *  first epochs of a healthy run can never trip the detector. */
    double min_spike_loss = 20.0;
    /** Unconditional divergence bound (no baseline required). */
    double divergence_loss = 1e6;
    /** Rolling-baseline window, in healthy epoch losses. */
    std::size_t baseline_window = 8;
    /** Rollback-and-retry attempts per epoch before degrading. */
    std::size_t max_retries = 2;
    /** LR multiplier for the second and later retries of an epoch —
     *  the first retry replays unchanged (transient faults vanish on
     *  replay); the backoff is undone once the epoch passes. */
    double lr_backoff = 0.5;
};

/** What a health check concluded. */
enum class HealthVerdict : std::uint8_t
{
    Healthy = 0,
    NonFiniteLoss = 1,   ///< epoch loss is NaN/Inf
    LossSpike = 2,       ///< loss spiked vs baseline, or diverged
    NonFiniteState = 3,  ///< a weight went NaN/Inf
};

/**
 * The training watchdog (DESIGN.md §5.14): finite-ness checks over
 * the epoch loss and model weights plus loss-spike/divergence
 * detection against a rolling baseline of healthy epoch losses.
 * Verdict counts land in the process-wide `health.*` stats.
 */
class HealthMonitor
{
  public:
    explicit HealthMonitor(const HealthConfig &cfg = {}) : cfg_(cfg) {}

    /** Judge one completed epoch. Healthy losses join the baseline. */
    HealthVerdict check(double loss, const SequenceModel &model);

    /** Healthy losses seen so far (capped at baseline_window). */
    std::size_t baseline_size() const { return baseline_.size(); }

  private:
    HealthConfig cfg_;
    std::vector<double> baseline_;  ///< rolling window, oldest first
};

/** Online-training schedule. */
struct OnlineTrainConfig
{
    std::size_t epochs = 5;
    std::uint32_t degree = 1;
    /** Extra passes over each epoch's samples (online SGD repeats). */
    std::size_t train_passes = 1;
    /** Cap on training samples per epoch; 0 = all. */
    std::size_t max_train_samples_per_epoch = 0;
    /** Train on all data seen so far (epochs <= current) instead of
     *  only the newest epoch. Still causal: epoch e's predictions use
     *  a model trained exclusively on epochs < e. Improves sample
     *  efficiency at miniature scale. */
    bool cumulative = false;
    std::uint64_t seed = 7;
    /** Watchdog thresholds and recovery policy. */
    HealthConfig health;
};

/** What the online protocol produces. */
struct OnlineResult
{
    /** Per-stream-index predictions; empty for epoch-0 indices. */
    std::vector<std::vector<Addr>> predictions;
    /** First index with predictions (start of epoch 1). */
    std::size_t first_predicted_index = 0;
    std::vector<double> epoch_losses;
    double train_seconds = 0.0;
    double inference_seconds = 0.0;
    std::uint64_t trained_samples = 0;
    std::uint64_t predicted_samples = 0;
    /** Recovery exhausted: training aborted early and the caller
     *  should fall back to the ISB+BO hybrid (DESIGN.md §5.14). */
    bool degraded = false;
    /** Snapshot restores the recovery policy performed. */
    std::uint64_t rollbacks = 0;
    /** Optimizer steps dropped for non-finite gradients. */
    std::uint64_t skipped_steps = 0;

    /**
     * Export into `reg` under `<prefix>.`: per-epoch losses
     * (`.epoch<i>.loss` gauges plus a `.epoch_loss` RunningStat),
     * sample counters, and the wall-clock timings (volatile, so
     * golden-run comparisons can drop them). Assigns counters/gauges;
     * the RunningStat is rebuilt only when still empty, keeping
     * re-export idempotent.
     */
    void export_stats(StatRegistry &reg,
                      const std::string &prefix) const;
};

/** Run the train-on-epoch-i / predict-epoch-i+1 protocol. */
OnlineResult train_online(SequenceModel &model, std::size_t stream_size,
                          const OnlineTrainConfig &cfg);

/**
 * train_online with crash-consistent checkpointing: optionally resume
 * from `ckpt.path`, write a checkpoint every `ckpt.every_epochs`
 * completed epochs, and (for kill-point simulation) return early after
 * `ckpt.stop_after_epochs` epochs. A run interrupted at any epoch
 * boundary and resumed in a fresh process reproduces the
 * uninterrupted run's result bit-for-bit.
 */
OnlineResult train_online(SequenceModel &model, std::size_t stream_size,
                          const OnlineTrainConfig &cfg,
                          const CheckpointConfig &ckpt);

/**
 * The *offline* protocol of prior ML work (Hashemi et al.; paper
 * §2.2): train on the first `train_fraction` of the stream for
 * `epochs` passes, then predict the held-out remainder once. The paper
 * argues this methodology is unrealistic for hardware (no continuous
 * adaptation); it is provided so the two protocols can be compared.
 */
OnlineResult train_offline(SequenceModel &model, std::size_t stream_size,
                           double train_fraction,
                           const OnlineTrainConfig &cfg);

/** Binds VoyagerModel to a stream: vocab + labels + decode. */
class VoyagerAdapter final : public SequenceModel
{
  public:
    VoyagerAdapter(const VoyagerConfig &cfg,
                   const std::vector<LlcAccess> &stream,
                   const VocabConfig &vocab_cfg = {},
                   const LabelerConfig &labeler_cfg = {});

    std::string name() const override { return "voyager"; }
    double train_on(const std::vector<std::size_t> &indices) override;
    std::vector<std::vector<Addr>>
    predict_on(const std::vector<std::size_t> &indices,
               std::uint32_t degree) override;
    void on_epoch_end() override { model_.decay_lr(); }
    std::uint64_t parameter_bytes() const override
    {
        return model_.parameter_bytes();
    }
    void save_state(std::ostream &os) const override
    {
        model_.save_state(os);
    }
    void load_state(std::istream &is) override
    {
        model_.load_state(is);
    }
    bool state_finite() const override
    {
        return model_.weights_finite();
    }
    void scale_lr(double factor) override { model_.scale_lr(factor); }

    VoyagerModel &model() { return model_; }
    const Vocabulary &vocab() const { return vocab_; }
    const std::vector<LabelSet> &labels() const { return labels_; }
    const EncodedStream &encoded() const { return encoded_; }

    /**
     * Snapshot the current weights into an int8 engine (DESIGN.md
     * §5.13) and route predict_on through it; training still updates
     * the fp32 model, so call again after further training to
     * refresh the snapshot. Typically called after compress_model,
     * whose quantization grid the snapshot reproduces exactly.
     */
    void enable_int8_inference()
    {
        qmodel_ = std::make_unique<QuantizedVoyagerModel>(model_);
    }
    /** Back to fp32 inference; discards the int8 snapshot. */
    void disable_int8_inference() { qmodel_.reset(); }
    /** The active int8 engine, or nullptr when inferring in fp32. */
    const QuantizedVoyagerModel *int8_model() const
    {
        return qmodel_.get();
    }

    /** Smallest index with enough history to form a sample. */
    std::size_t min_index() const { return cfg_.seq_len - 1; }

    /**
     * Batch-capable serving facade (DESIGN.md §5.16): top-k token
     * candidates for an externally packed batch, routed through the
     * active inference engine (the int8 snapshot when
     * enable_int8_inference() is on, the fp32 model otherwise).
     * predict_on and the serve dispatcher share this entry point, so
     * the two paths can never diverge on engine selection.
     */
    std::vector<std::vector<TokenPrediction>>
    predict_tokens(const VoyagerBatch &batch, std::size_t k)
    {
        return qmodel_ ? qmodel_->predict(batch, k)
                       : model_.predict(batch, k);
    }

    /**
     * Ranked top-k token candidates per index — the token-level twin
     * of predict_on (same trailing windows, same batch chunking,
     * same engine routing) minus the decode loop. The distillation
     * pass (core/tabular.hpp) consumes these as teacher labels.
     * Indices without enough history yield empty slots.
     */
    std::vector<std::vector<TokenPrediction>>
    predict_token_candidates(const std::vector<std::size_t> &indices,
                             std::size_t k);

  private:
    /** Fill histories for `indices` into a batch (no labels). */
    void fill_histories(const std::vector<std::size_t> &indices,
                        VoyagerBatch &batch) const;
    /** Token labels of sample i under the enabled schemes. */
    bool sample_labels(std::size_t i,
                       std::vector<TokenLabel> &labels) const;

    VoyagerConfig cfg_;
    const std::vector<LlcAccess> &stream_;
    Vocabulary vocab_;
    EncodedStream encoded_;
    std::vector<LabelSet> labels_;
    VoyagerModel model_;
    /** When set, predict_on runs through the int8 engine. */
    std::unique_ptr<QuantizedVoyagerModel> qmodel_;
};

/** Binds DeltaLstmModel to a stream. */
class DeltaLstmAdapter final : public SequenceModel
{
  public:
    DeltaLstmAdapter(const DeltaLstmConfig &cfg,
                     const std::vector<LlcAccess> &stream);

    std::string name() const override { return "delta_lstm"; }
    double train_on(const std::vector<std::size_t> &indices) override;
    std::vector<std::vector<Addr>>
    predict_on(const std::vector<std::size_t> &indices,
               std::uint32_t degree) override;
    std::uint64_t parameter_bytes() const override
    {
        return model_->parameter_bytes();
    }
    void save_state(std::ostream &os) const override
    {
        model_->save_state(os);
    }
    void load_state(std::istream &is) override
    {
        model_->load_state(is);
    }
    bool state_finite() const override
    {
        return model_->weights_finite();
    }
    void scale_lr(double factor) override { model_->scale_lr(factor); }

    DeltaLstmModel &model() { return *model_; }
    const DeltaVocab &vocab() const { return vocab_; }
    std::size_t min_index() const { return cfg_.seq_len; }

  private:
    void fill_histories(const std::vector<std::size_t> &indices,
                        DeltaBatch &batch) const;

    DeltaLstmConfig cfg_;
    const std::vector<LlcAccess> &stream_;
    DeltaVocab vocab_;
    /** Constructed after the PC scan (vocab sizes needed first). */
    std::unique_ptr<DeltaLstmModel> model_;
    std::vector<std::int32_t> delta_tokens_;  ///< token of line[i]-line[i-1]
    std::vector<std::int32_t> pc_tokens_;
    std::unordered_map<Addr, std::int32_t> pc_ids_;
};

}  // namespace voyager::core
