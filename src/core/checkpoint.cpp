#include "core/checkpoint.hpp"

#include <filesystem>

#include "core/trainer.hpp"
#include "nn/serialize.hpp"
#include "util/string_util.hpp"

namespace voyager::core {

namespace {

/** Length-prefixed string (u64 length + raw bytes). */
void
write_str(std::ostream &os, const std::string &s)
{
    nn::write_u64(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
read_str(std::istream &is)
{
    const std::uint64_t n = nn::read_u64(is);
    // A section payload is bounded by the file size; anything past a
    // few MB of name is corruption, not data.
    if (n > (1u << 20))
        throw CheckpointError(
            strfmt("implausible string length %llu in checkpoint",
                   static_cast<unsigned long long>(n)));
    std::string s(static_cast<std::size_t>(n), '\0');
    if (n) {
        is.read(s.data(), static_cast<std::streamsize>(n));
        if (is.gcount() != static_cast<std::streamsize>(n))
            throw CheckpointError("checkpoint string truncated");
    }
    return s;
}

/** Check a meta field against the resuming run's value. */
void
require_match(std::uint64_t have, std::uint64_t want, const char *what)
{
    if (have != want) {
        throw CheckpointError(
            strfmt("checkpoint %s is %llu but the resuming run uses "
                   "%llu; refusing to mix configurations",
                   what, static_cast<unsigned long long>(have),
                   static_cast<unsigned long long>(want)));
    }
}

}  // namespace

CheckpointStats &
checkpoint_stats()
{
    static CheckpointStats stats;
    return stats;
}

void
export_checkpoint_stats(StatRegistry &reg)
{
    // Volatile: an interrupted-and-resumed run checkpoints while the
    // equivalent straight run does not, and the deterministic
    // (include_volatile=false) document must stay byte-identical
    // between the two.
    const CheckpointStats &s = checkpoint_stats();
    reg.counter("checkpoint.writes", true) = s.writes;
    reg.counter("checkpoint.bytes", true) = s.bytes_written;
    reg.counter("checkpoint.resumes", true) = s.resumes;
}

CheckpointMeta
read_checkpoint_meta(const CheckpointReader &reader)
{
    CheckpointMeta meta;
    try {
        auto ms = reader.section("meta");
        meta.model = read_str(ms);
        meta.stream_size = nn::read_u64(ms);
        meta.epochs = nn::read_u64(ms);
        meta.degree = nn::read_u64(ms);
        meta.train_passes = nn::read_u64(ms);
        meta.max_train_samples_per_epoch = nn::read_u64(ms);
        meta.cumulative = nn::read_u64(ms) != 0;
        meta.seed = nn::read_u64(ms);
        auto ts = reader.section("trainer");
        meta.next_epoch = nn::read_u64(ts);
        meta.trained_samples = nn::read_u64(ts);
    } catch (const CheckpointError &) {
        throw;
    } catch (const std::exception &e) {
        throw CheckpointError(
            strfmt("malformed checkpoint meta: %s", e.what()));
    }
    return meta;
}

void
save_training_checkpoint(const std::string &path,
                         const SequenceModel &model,
                         const OnlineTrainConfig &cfg,
                         std::size_t stream_size, std::size_t next_epoch,
                         const Rng &rng, const OnlineResult &partial)
{
    CheckpointWriter writer;

    std::ostream &ms = writer.section("meta");
    write_str(ms, model.name());
    nn::write_u64(ms, stream_size);
    nn::write_u64(ms, cfg.epochs);
    nn::write_u64(ms, cfg.degree);
    nn::write_u64(ms, cfg.train_passes);
    nn::write_u64(ms, cfg.max_train_samples_per_epoch);
    nn::write_u64(ms, cfg.cumulative ? 1 : 0);
    nn::write_u64(ms, cfg.seed);

    std::ostream &ts = writer.section("trainer");
    nn::write_u64(ts, next_epoch);
    nn::write_u64(ts, partial.trained_samples);
    nn::write_u64(ts, partial.predicted_samples);
    nn::write_u64(ts, partial.first_predicted_index);
    nn::write_u64(ts, partial.epoch_losses.size());
    for (const double loss : partial.epoch_losses)
        nn::write_f64(ts, loss);
    nn::save_rng_state(ts, rng.state());

    std::ostream &ps = writer.section("predictions");
    nn::write_u64(ps, partial.predictions.size());
    for (const auto &lines : partial.predictions) {
        nn::write_u64(ps, lines.size());
        for (const Addr line : lines)
            nn::write_u64(ps, line);
    }

    model.save_state(writer.section("model"));

    CheckpointStats &stats = checkpoint_stats();
    stats.bytes_written += writer.write_file(path);
    ++stats.writes;
}

std::optional<std::size_t>
try_resume_training(const std::string &path, SequenceModel &model,
                    const OnlineTrainConfig &cfg, std::size_t stream_size,
                    Rng &rng, OnlineResult &partial)
{
    if (!std::filesystem::exists(path))
        return std::nullopt;

    const CheckpointReader reader = CheckpointReader::from_file(path);
    const CheckpointMeta meta = read_checkpoint_meta(reader);
    if (meta.model != model.name()) {
        throw CheckpointError(
            strfmt("checkpoint holds a '%s' model but the resuming "
                   "run trains '%s'",
                   meta.model.c_str(), model.name().c_str()));
    }
    require_match(meta.stream_size, stream_size, "stream size");
    require_match(meta.epochs, cfg.epochs, "epoch count");
    require_match(meta.degree, cfg.degree, "prefetch degree");
    require_match(meta.train_passes, cfg.train_passes, "train passes");
    require_match(meta.max_train_samples_per_epoch,
                  cfg.max_train_samples_per_epoch,
                  "max train samples per epoch");
    require_match(meta.cumulative ? 1 : 0, cfg.cumulative ? 1 : 0,
                  "cumulative-replay flag");
    require_match(meta.seed, cfg.seed, "trainer seed");
    if (meta.next_epoch == 0 || meta.next_epoch > meta.epochs) {
        throw CheckpointError(
            strfmt("checkpoint resume epoch %llu is outside (0, %llu]",
                   static_cast<unsigned long long>(meta.next_epoch),
                   static_cast<unsigned long long>(meta.epochs)));
    }

    try {
        auto ts = reader.section("trainer");
        nn::read_u64(ts);  // next_epoch, already in meta
        partial.trained_samples = nn::read_u64(ts);
        partial.predicted_samples = nn::read_u64(ts);
        partial.first_predicted_index = nn::read_u64(ts);
        const std::uint64_t n_losses = nn::read_u64(ts);
        if (n_losses > meta.epochs) {
            throw CheckpointError(
                strfmt("checkpoint records %llu epoch losses for a "
                       "%llu-epoch run",
                       static_cast<unsigned long long>(n_losses),
                       static_cast<unsigned long long>(meta.epochs)));
        }
        partial.epoch_losses.clear();
        partial.epoch_losses.reserve(n_losses);
        for (std::uint64_t i = 0; i < n_losses; ++i)
            partial.epoch_losses.push_back(nn::read_f64(ts));
        rng.set_state(nn::load_rng_state(ts));

        auto ps = reader.section("predictions");
        const std::uint64_t n_pred = nn::read_u64(ps);
        if (n_pred != stream_size) {
            throw CheckpointError(
                strfmt("checkpoint predictions cover %llu indices but "
                       "the stream has %llu",
                       static_cast<unsigned long long>(n_pred),
                       static_cast<unsigned long long>(stream_size)));
        }
        partial.predictions.assign(stream_size, {});
        for (std::uint64_t i = 0; i < n_pred; ++i) {
            const std::uint64_t n_lines = nn::read_u64(ps);
            if (n_lines > cfg.degree) {
                throw CheckpointError(
                    strfmt("checkpoint index %llu has %llu predicted "
                           "lines but degree is %u",
                           static_cast<unsigned long long>(i),
                           static_cast<unsigned long long>(n_lines),
                           cfg.degree));
            }
            auto &lines = partial.predictions[i];
            lines.reserve(n_lines);
            for (std::uint64_t j = 0; j < n_lines; ++j)
                lines.push_back(nn::read_u64(ps));
        }

        auto mos = reader.section("model");
        model.load_state(mos);
    } catch (const CheckpointError &) {
        throw;
    } catch (const std::exception &e) {
        throw CheckpointError(
            strfmt("failed to restore checkpoint state: %s", e.what()));
    }

    ++checkpoint_stats().resumes;
    return static_cast<std::size_t>(meta.next_epoch);
}

}  // namespace voyager::core
