#include "core/compress.hpp"

#include <algorithm>

#include "nn/quantize.hpp"

namespace voyager::core {

CompressionReport
compress_model(VoyagerModel &model, const CompressConfig &cfg)
{
    CompressionReport rep;

    const auto embeddings = {
        &model.pc_embedding().param().value,
        &model.page_embedding().param().value,
        &model.offset_embedding().param().value,
    };

    nn::QuantError err;
    for (nn::Matrix *w : model.weights()) {
        const bool is_embedding =
            std::find(embeddings.begin(), embeddings.end(), w) !=
            embeddings.end();
        const double sparsity =
            is_embedding ? cfg.prune_sparsity : cfg.dense_layer_sparsity;
        nn::magnitude_prune(*w, sparsity);
        if (cfg.quantize_int8) {
            // Scale axis mirrors QMatrix: embedding tables and bias
            // row vectors per-row, 2-D weights per output channel.
            const nn::QuantAxis axis =
                is_embedding || w->rows() == 1 ? nn::QuantAxis::Row
                                               : nn::QuantAxis::Col;
            err.merge(nn::quantize_dequantize_int8(*w, axis));
        }
        const auto s32 = nn::measure_storage(*w, 32);
        const auto s8 = nn::measure_storage(*w, 8);
        rep.params += s32.elements;
        rep.dense_fp32_bytes += s32.elements * 4;
        rep.pruned_fp32_bytes += s32.sparse_bytes();
        rep.pruned_int8_bytes += s8.sparse_bytes();
    }
    rep.max_quant_error = err.max_err;
    rep.rms_quant_error = err.rms();
    std::uint64_t nonzero = 0;
    for (const nn::Matrix *w :
         const_cast<const VoyagerModel &>(model).weights())
        nonzero += nn::nonzero_count(*w);
    rep.sparsity = rep.params
        ? 1.0 - static_cast<double>(nonzero) /
                    static_cast<double>(rep.params)
        : 0.0;
    return rep;
}

std::uint64_t
temporal_prefetcher_bytes(std::uint64_t distinct_lines,
                          std::uint64_t bytes_per_entry)
{
    return distinct_lines * bytes_per_entry;
}

}  // namespace voyager::core
