#include "core/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "prefetch/hybrid.hpp"

namespace voyager::core {

void
UnifiedMetric::export_stats(StatRegistry &reg,
                            const std::string &prefix) const
{
    reg.counter(prefix + ".correct") = correct;
    reg.counter(prefix + ".evaluated") = evaluated;
    reg.gauge(prefix + ".value") = value();
}

UnifiedMetric
unified_accuracy_coverage(const std::vector<LlcAccess> &stream,
                          const std::vector<std::vector<Addr>> &predictions,
                          std::size_t first_index, std::size_t horizon)
{
    UnifiedMetric m;
    const std::size_t n = stream.size();
    for (std::size_t i = first_index; i < n; ++i) {
        if (i >= predictions.size())
            break;
        ++m.evaluated;
        const auto &preds = predictions[i];
        if (preds.empty())
            continue;
        const std::size_t end = std::min(n, i + 1 + horizon);
        bool hit = false;
        for (std::size_t j = i + 1; j < end && !hit; ++j) {
            if (!stream[j].is_load)
                continue;
            hit = std::find(preds.begin(), preds.end(), stream[j].line) !=
                  preds.end();
        }
        m.correct += hit ? 1 : 0;
    }
    return m;
}

std::vector<std::uint8_t>
covered_flags(const std::vector<LlcAccess> &stream,
              const std::vector<std::vector<Addr>> &predictions,
              std::size_t first_index, std::size_t horizon)
{
    const std::size_t n = stream.size();
    std::vector<std::uint8_t> covered(n, 0);
    // For each prediction, mark the next occurrence of the predicted
    // line within the horizon as covered.
    std::unordered_map<Addr, std::size_t> last_predicted_at;
    for (std::size_t i = first_index; i < n; ++i) {
        // Check whether this access was predicted recently.
        if (auto it = last_predicted_at.find(stream[i].line);
            it != last_predicted_at.end() &&
            i - it->second <= horizon) {
            covered[i] = 1;
        }
        if (i < predictions.size()) {
            for (const Addr p : predictions[i])
                last_predicted_at[p] = i;
        }
    }
    return covered;
}

PatternBreakdown
classify_patterns(const std::vector<LlcAccess> &stream,
                  const std::vector<std::uint8_t> &covered,
                  std::size_t first_index, std::int64_t spatial_range,
                  std::size_t cooccur_k)
{
    PatternBreakdown b;
    const std::size_t n = stream.size();

    // Follower frequency of each line's successor (for the
    // co-occurrence class).
    std::unordered_map<Addr, std::unordered_map<Addr, std::uint32_t>>
        followers;
    for (std::size_t i = 1; i < n; ++i)
        ++followers[stream[i - 1].line][stream[i].line];
    // Reduce each map to its top-k follower set.
    std::unordered_map<Addr, std::unordered_set<Addr>> topk;
    for (const auto &[line, counts] : followers) {
        std::vector<std::pair<std::uint32_t, Addr>> items;
        items.reserve(counts.size());
        for (const auto &[f, c] : counts)
            items.emplace_back(c, f);
        std::sort(items.begin(), items.end(),
                  [](const auto &x, const auto &y) {
                      if (x.first != y.first)
                          return x.first > y.first;
                      return x.second < y.second;
                  });
        auto &set = topk[line];
        for (std::size_t k = 0; k < std::min(cooccur_k, items.size());
             ++k)
            set.insert(items[k].second);
    }

    const std::size_t start = std::max<std::size_t>(first_index, 1);
    std::unordered_set<Addr> seen;
    for (std::size_t i = 0; i < start && i < n; ++i)
        seen.insert(stream[i].line);

    for (std::size_t i = start; i < n; ++i) {
        const Addr line = stream[i].line;
        const bool compulsory = !seen.count(line);
        seen.insert(line);
        if (!stream[i].is_load)
            continue;
        ++b.total;
        const std::int64_t delta =
            static_cast<std::int64_t>(line) -
            static_cast<std::int64_t>(stream[i - 1].line);
        const bool spatial = std::llabs(delta) <= spatial_range;
        if (covered[i]) {
            if (spatial)
                ++b.covered_spatial;
            else
                ++b.covered_non_spatial;
            continue;
        }
        if (compulsory) {
            ++b.uncovered_compulsory;
        } else if (spatial) {
            ++b.uncovered_spatial;
        } else {
            auto it = topk.find(stream[i - 1].line);
            const bool cooc =
                it != topk.end() && it->second.count(line) != 0;
            if (cooc)
                ++b.uncovered_cooccurrence;
            else
                ++b.uncovered_other;
        }
    }
    return b;
}

std::vector<std::vector<Addr>>
run_prefetcher_on_stream(sim::Prefetcher &pf,
                         const std::vector<LlcAccess> &stream)
{
    std::vector<std::vector<Addr>> out;
    out.reserve(stream.size());
    for (const auto &a : stream)
        out.push_back(pf.on_access(a));
    return out;
}

std::vector<std::vector<Addr>>
isb_bo_fallback_predictions(const std::vector<LlcAccess> &stream,
                            std::uint32_t degree)
{
    const auto pf = prefetch::make_isb_bo_hybrid(degree);
    return run_prefetcher_on_stream(*pf, stream);
}

}  // namespace voyager::core
