/**
 * @file
 * Crash-consistent checkpoint/resume for online training (the
 * production-deployment concern of paper §5/Fig. 17: a long-running
 * online trainer must survive interruption without retraining from
 * scratch). A training checkpoint is a manifest-led container
 * (util/checkpoint_file.hpp) with four sections:
 *
 *   meta         model name + the OnlineTrainConfig fingerprint; a
 *                resume against a different configuration is refused
 *   trainer      epoch cursor, sample counters, per-epoch losses and
 *                the trainer's RNG stream
 *   predictions  per-stream-index predictions accumulated so far
 *   model        the SequenceModel's save_state blob (weights, Adam
 *                moments/step, LR-decay position, RNG streams)
 *
 * Checkpoints are written at epoch boundaries via atomic
 * write-rename; a resumed run is bit-for-bit equivalent to an
 * uninterrupted one (tests/checkpoint_test.cpp pins this).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/checkpoint_file.hpp"
#include "util/random.hpp"
#include "util/stat_registry.hpp"

namespace voyager::core {

class SequenceModel;
struct OnlineTrainConfig;
struct OnlineResult;

/** Checkpoint schedule for train_online. */
struct CheckpointConfig
{
    /** Checkpoint file path; empty disables checkpointing. */
    std::string path;
    /** Write a checkpoint every this many completed epochs. */
    std::size_t every_epochs = 1;
    /** Resume from `path` if it exists (fresh start otherwise). */
    bool resume = false;
    /**
     * When > 0, write a checkpoint and return the partial result
     * after this many total completed epochs — a deterministic kill
     * point for equivalence tests and staged/budgeted training runs.
     */
    std::size_t stop_after_epochs = 0;

    bool enabled() const { return !path.empty(); }
};

/** Process-wide checkpoint activity counters (exported as stats). */
struct CheckpointStats
{
    std::uint64_t writes = 0;         ///< checkpoint files written
    std::uint64_t bytes_written = 0;  ///< total serialized bytes
    std::uint64_t resumes = 0;        ///< successful resumes

    void
    reset()
    {
        *this = CheckpointStats{};
    }
};

/** The process-wide checkpoint counters (cf. nn::op_stats()). */
CheckpointStats &checkpoint_stats();

/**
 * Export the process-wide counters into `reg` as the counters
 * `checkpoint.writes`, `checkpoint.bytes`, `checkpoint.resumes`.
 */
void export_checkpoint_stats(StatRegistry &reg);

/** Decoded meta + cursor of a training checkpoint (for inspection). */
struct CheckpointMeta
{
    std::string model;
    std::uint64_t stream_size = 0;
    std::uint64_t epochs = 0;
    std::uint64_t degree = 0;
    std::uint64_t train_passes = 0;
    std::uint64_t max_train_samples_per_epoch = 0;
    bool cumulative = false;
    std::uint64_t seed = 0;
    std::uint64_t next_epoch = 0;
    std::uint64_t trained_samples = 0;
};

/**
 * Decode the meta and trainer-cursor fields of a parsed checkpoint.
 * @throws CheckpointError on malformed sections.
 */
CheckpointMeta read_checkpoint_meta(const CheckpointReader &reader);

/**
 * Serialize the complete training state and atomically replace
 * `path`. `next_epoch` is the first epoch the resumed run will
 * execute. @throws std::runtime_error on I/O failure.
 */
void save_training_checkpoint(const std::string &path,
                              const SequenceModel &model,
                              const OnlineTrainConfig &cfg,
                              std::size_t stream_size,
                              std::size_t next_epoch, const Rng &rng,
                              const OnlineResult &partial);

/**
 * Restore training state from `path` into `model`, `rng` and
 * `partial`. Returns the epoch to resume at, or nullopt when no
 * checkpoint file exists (fresh start). @throws CheckpointError on a
 * corrupt checkpoint or one written by an incompatible run.
 */
std::optional<std::size_t>
try_resume_training(const std::string &path, SequenceModel &model,
                    const OnlineTrainConfig &cfg,
                    std::size_t stream_size, Rng &rng,
                    OnlineResult &partial);

}  // namespace voyager::core
