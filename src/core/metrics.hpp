/**
 * @file
 * Evaluation metrics: the unified accuracy/coverage metric (paper
 * §5.1, after Srivastava et al.) and the access-pattern breakdown of
 * Figs. 10/11. Also a helper to run a rule-based prefetcher over an
 * extracted LLC stream so neural and rule-based predictors are scored
 * by identical machinery.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/prefetcher.hpp"
#include "util/stat_registry.hpp"
#include "util/types.hpp"

namespace voyager::core {

using sim::LlcAccess;

/** Unified accuracy/coverage outcome. */
struct UnifiedMetric
{
    std::uint64_t correct = 0;
    std::uint64_t evaluated = 0;   ///< accesses with a prediction slot

    double
    value() const
    {
        return evaluated ? static_cast<double>(correct) /
                               static_cast<double>(evaluated)
                         : 0.0;
    }

    /** Export `.correct`, `.evaluated` and `.value` under `<prefix>.`. */
    void export_stats(StatRegistry &reg,
                      const std::string &prefix) const;
};

/**
 * Unified accuracy/coverage: a prediction at access i is correct iff
 * one of its predicted lines is an actual *load* line among the next
 * `horizon` accesses (horizon=1 is the strict next-load-address form;
 * the default 10 matches the co-occurrence window, crediting every
 * labeling scheme the model may have chosen — see EXPERIMENTS.md).
 *
 * Accesses before `first_index` (epoch 0, no inference) are skipped.
 */
UnifiedMetric unified_accuracy_coverage(
    const std::vector<LlcAccess> &stream,
    const std::vector<std::vector<Addr>> &predictions,
    std::size_t first_index, std::size_t horizon = 10);

/**
 * Per-access covered flags: access i counts covered when some
 * prediction made within the previous `horizon` accesses named its
 * line. Used by the Fig. 10/11 breakdown.
 */
std::vector<std::uint8_t>
covered_flags(const std::vector<LlcAccess> &stream,
              const std::vector<std::vector<Addr>> &predictions,
              std::size_t first_index, std::size_t horizon = 32);

/** Fig. 10/11 pattern classes. */
struct PatternBreakdown
{
    std::uint64_t covered_spatial = 0;
    std::uint64_t covered_non_spatial = 0;
    std::uint64_t uncovered_spatial = 0;
    std::uint64_t uncovered_cooccurrence = 0;   ///< top-10 follower
    std::uint64_t uncovered_other = 0;
    std::uint64_t uncovered_compulsory = 0;     ///< first-ever line
    std::uint64_t total = 0;

    double frac(std::uint64_t x) const
    {
        return total ? static_cast<double>(x) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Classify each (evaluated) access by how it relates to its
 * predecessor and whether the predictor covered it:
 *  - spatial: |Δline| from the previous access <= spatial_range
 *  - compulsory: first occurrence of the line in the whole stream
 *  - co-occurrence-k: the line is one of the k most frequent followers
 *    of the previous line (k = 10 as in the paper)
 */
PatternBreakdown classify_patterns(
    const std::vector<LlcAccess> &stream,
    const std::vector<std::uint8_t> &covered, std::size_t first_index,
    std::int64_t spatial_range = 256, std::size_t cooccur_k = 10);

/**
 * Run a rule-based prefetcher over an LLC stream, recording its
 * candidates per index (the replay form used for breakdowns and
 * unified metrics).
 */
std::vector<std::vector<Addr>>
run_prefetcher_on_stream(sim::Prefetcher &pf,
                         const std::vector<LlcAccess> &stream);

/**
 * Degraded-mode fallback (DESIGN.md §5.14): replay the ISB+BO hybrid
 * — the paper's strongest rule-based baseline (Figs. 5-8) — over the
 * stream at `degree`. One shared entry point for bench fallback
 * wiring and tests, so a degraded run's predictions are bit-for-bit
 * those of the standalone hybrid at the same degree.
 */
std::vector<std::vector<Addr>>
isb_bo_fallback_predictions(const std::vector<LlcAccess> &stream,
                            std::uint32_t degree);

}  // namespace voyager::core
