#include "nn/qops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "nn/ops.hpp"

#if defined(__AVX512VNNI__) && defined(__AVX512F__) && \
    defined(__AVX512BW__)
#define VOYAGER_QGEMM_VNNI 1
#include <immintrin.h>
#endif

namespace voyager::nn {

namespace {

// ---------------------------------------------------------------------
// Packed register-blocked int8 microkernel.
//
// Same GotoBLAS shape as the fp32 kernel in ops.cpp, retuned for
// VNNI's u8 x s8 -> s32 dot: the register tile is QMR = 4 activation
// rows by QNR = 16 output channels, and the k loop advances QKG = 4
// values per step — one `vpdpbusd` per (row, zmm) pair, with the B
// panel pre-packed (QMatrix::pack) so each k group of all 16 channels
// is a single 64-byte load. Activation rows are zero-padded to a
// multiple of 4 bytes by quantize_activations, and the panel pads
// ragged k/n edges with zero weight bytes, so padded lanes contribute
// exactly 0 — the kernel stays branch-free and integer-exact.
// ---------------------------------------------------------------------

constexpr std::size_t QMR = 4;   ///< activation rows per tile
constexpr std::size_t QNR = 16;  ///< output channels per tile
constexpr std::size_t QKG = 4;   ///< k values per dot group

/**
 * Fold one row of int32 accumulators into fp32 output: apply the
 * symmetric weight scale, the activation scale, and the activation
 * zero-point correction via the precomputed weight row sums. Uses a
 * fused multiply-add with the (sa*sw, corrected-acc) grouping so the
 * portable path is bit-identical to the VNNI path's vector FMA.
 */
inline void
requant_row(const std::int32_t *acc, const QActivations &a,
            std::size_t i, const QMatrix &w, std::size_t j0,
            std::size_t jrem, float *crow)
{
    const float sa = a.scale(i);
    const std::int32_t za = a.zero_point(i);
    for (std::size_t j = 0; j < jrem; ++j) {
        const std::size_t ch = j0 + j;
        crow[ch] = std::fmaf(
            sa * w.scale(ch),
            static_cast<float>(acc[j] - za * w.row_sum(ch)),
            crow[ch]);
    }
}

#ifdef VOYAGER_QGEMM_VNNI

/**
 * Vectorized requantize of one 16-channel accumulator for batch row
 * i: subtract this row's zero-point correction (za * weight row
 * sums), convert to float, fused-multiply-add by the per-channel
 * sa*sw into the output row. The mask handles the ragged n edge
 * (masked loads/stores neither read nor fault masked lanes).
 */
inline void
requant_zmm(__m512i acc, std::int32_t za, float sa, __m512i rs,
            __m512 sw, __mmask16 mask, float *cptr)
{
    const __m512i corr =
        _mm512_mullo_epi32(_mm512_set1_epi32(za), rs);
    const __m512 scale = _mm512_mul_ps(_mm512_set1_ps(sa), sw);
    const __m512 f =
        _mm512_cvtepi32_ps(_mm512_sub_epi32(acc, corr));
    const __m512 cv = _mm512_maskz_loadu_ps(mask, cptr);
    _mm512_mask_storeu_ps(cptr, mask,
                          _mm512_fmadd_ps(f, scale, cv));
}

void
qgemm_nt_kernel(const QActivations &a, const QMatrix &w, Matrix &c)
{
    const std::size_t m = a.rows;
    const std::size_t n = w.rows();
    const std::size_t kg = (a.cols + QKG - 1) / QKG;
    const std::int8_t *packed = w.packed();
    const std::size_t panel_bytes = kg * QNR * QKG;

    // Main loop: two adjacent 16-channel panels per pass, so every
    // activation broadcast feeds 32 output channels — halves the
    // load-port traffic per VNNI op vs the single-panel edge loop.
    std::size_t j0 = 0;
    for (; j0 + 2 * QNR <= n; j0 += 2 * QNR) {
        const std::int8_t *p0 = packed + (j0 / QNR) * panel_bytes;
        const std::int8_t *p1 = p0 + panel_bytes;
        const __m512i rs0 =
            _mm512_loadu_si512(w.row_sums_ptr() + j0);
        const __m512i rs1 =
            _mm512_loadu_si512(w.row_sums_ptr() + j0 + QNR);
        const __m512 sw0 = _mm512_loadu_ps(w.scales_ptr() + j0);
        const __m512 sw1 = _mm512_loadu_ps(w.scales_ptr() + j0 + QNR);
        std::size_t i0 = 0;
        for (; i0 + QMR <= m; i0 += QMR) {
            const std::uint8_t *a0 = a.row(i0);
            const std::uint8_t *a1 = a.row(i0 + 1);
            const std::uint8_t *a2 = a.row(i0 + 2);
            const std::uint8_t *a3 = a.row(i0 + 3);
            __m512i acc00 = _mm512_setzero_si512();
            __m512i acc01 = _mm512_setzero_si512();
            __m512i acc10 = _mm512_setzero_si512();
            __m512i acc11 = _mm512_setzero_si512();
            __m512i acc20 = _mm512_setzero_si512();
            __m512i acc21 = _mm512_setzero_si512();
            __m512i acc30 = _mm512_setzero_si512();
            __m512i acc31 = _mm512_setzero_si512();
            for (std::size_t g = 0; g < kg; ++g) {
                const __m512i bv0 = _mm512_loadu_si512(
                    p0 + g * QNR * QKG);
                const __m512i bv1 = _mm512_loadu_si512(
                    p1 + g * QNR * QKG);
                std::uint32_t w0, w1, w2, w3;
                std::memcpy(&w0, a0 + g * QKG, 4);
                std::memcpy(&w1, a1 + g * QKG, 4);
                std::memcpy(&w2, a2 + g * QKG, 4);
                std::memcpy(&w3, a3 + g * QKG, 4);
                const __m512i v0 =
                    _mm512_set1_epi32(static_cast<int>(w0));
                const __m512i v1 =
                    _mm512_set1_epi32(static_cast<int>(w1));
                const __m512i v2 =
                    _mm512_set1_epi32(static_cast<int>(w2));
                const __m512i v3 =
                    _mm512_set1_epi32(static_cast<int>(w3));
                acc00 = _mm512_dpbusd_epi32(acc00, v0, bv0);
                acc01 = _mm512_dpbusd_epi32(acc01, v0, bv1);
                acc10 = _mm512_dpbusd_epi32(acc10, v1, bv0);
                acc11 = _mm512_dpbusd_epi32(acc11, v1, bv1);
                acc20 = _mm512_dpbusd_epi32(acc20, v2, bv0);
                acc21 = _mm512_dpbusd_epi32(acc21, v2, bv1);
                acc30 = _mm512_dpbusd_epi32(acc30, v3, bv0);
                acc31 = _mm512_dpbusd_epi32(acc31, v3, bv1);
            }
            requant_zmm(acc00, a.zero_point(i0), a.scale(i0), rs0,
                        sw0, 0xffff, c.row(i0) + j0);
            requant_zmm(acc01, a.zero_point(i0), a.scale(i0), rs1,
                        sw1, 0xffff, c.row(i0) + j0 + QNR);
            requant_zmm(acc10, a.zero_point(i0 + 1), a.scale(i0 + 1),
                        rs0, sw0, 0xffff, c.row(i0 + 1) + j0);
            requant_zmm(acc11, a.zero_point(i0 + 1), a.scale(i0 + 1),
                        rs1, sw1, 0xffff, c.row(i0 + 1) + j0 + QNR);
            requant_zmm(acc20, a.zero_point(i0 + 2), a.scale(i0 + 2),
                        rs0, sw0, 0xffff, c.row(i0 + 2) + j0);
            requant_zmm(acc21, a.zero_point(i0 + 2), a.scale(i0 + 2),
                        rs1, sw1, 0xffff, c.row(i0 + 2) + j0 + QNR);
            requant_zmm(acc30, a.zero_point(i0 + 3), a.scale(i0 + 3),
                        rs0, sw0, 0xffff, c.row(i0 + 3) + j0);
            requant_zmm(acc31, a.zero_point(i0 + 3), a.scale(i0 + 3),
                        rs1, sw1, 0xffff, c.row(i0 + 3) + j0 + QNR);
        }
        for (; i0 < m; ++i0) {  // ragged m tail, one row at a time
            const std::uint8_t *ar = a.row(i0);
            __m512i acc0 = _mm512_setzero_si512();
            __m512i acc1 = _mm512_setzero_si512();
            for (std::size_t g = 0; g < kg; ++g) {
                const __m512i bv0 = _mm512_loadu_si512(
                    p0 + g * QNR * QKG);
                const __m512i bv1 = _mm512_loadu_si512(
                    p1 + g * QNR * QKG);
                std::uint32_t wq;
                std::memcpy(&wq, ar + g * QKG, 4);
                const __m512i v =
                    _mm512_set1_epi32(static_cast<int>(wq));
                acc0 = _mm512_dpbusd_epi32(acc0, v, bv0);
                acc1 = _mm512_dpbusd_epi32(acc1, v, bv1);
            }
            requant_zmm(acc0, a.zero_point(i0), a.scale(i0), rs0, sw0,
                        0xffff, c.row(i0) + j0);
            requant_zmm(acc1, a.zero_point(i0), a.scale(i0), rs1, sw1,
                        0xffff, c.row(i0) + j0 + QNR);
        }
    }

    // Edge loop: at most one full panel plus a ragged (<16) tail.
    for (; j0 < n; j0 += QNR) {
        const std::int8_t *panel =
            packed + (j0 / QNR) * kg * QNR * QKG;
        const std::size_t jrem = std::min(QNR, n - j0);
        const auto mask = static_cast<__mmask16>(
            jrem == QNR ? 0xffffu : (1u << jrem) - 1u);
        // Per-tile weight constants; the requantize folds in each
        // batch row's dynamic scale/zero-point.
        const __m512i rs = _mm512_maskz_loadu_epi32(
            mask, w.row_sums_ptr() + j0);
        const __m512 sw =
            _mm512_maskz_loadu_ps(mask, w.scales_ptr() + j0);
        std::size_t i0 = 0;
        for (; i0 + QMR <= m; i0 += QMR) {
            const std::uint8_t *a0 = a.row(i0);
            const std::uint8_t *a1 = a.row(i0 + 1);
            const std::uint8_t *a2 = a.row(i0 + 2);
            const std::uint8_t *a3 = a.row(i0 + 3);
            __m512i acc0 = _mm512_setzero_si512();
            __m512i acc1 = _mm512_setzero_si512();
            __m512i acc2 = _mm512_setzero_si512();
            __m512i acc3 = _mm512_setzero_si512();
            for (std::size_t g = 0; g < kg; ++g) {
                const __m512i bv = _mm512_loadu_si512(
                    panel + g * QNR * QKG);
                std::uint32_t w0, w1, w2, w3;
                std::memcpy(&w0, a0 + g * QKG, 4);
                std::memcpy(&w1, a1 + g * QKG, 4);
                std::memcpy(&w2, a2 + g * QKG, 4);
                std::memcpy(&w3, a3 + g * QKG, 4);
                acc0 = _mm512_dpbusd_epi32(
                    acc0, _mm512_set1_epi32(static_cast<int>(w0)), bv);
                acc1 = _mm512_dpbusd_epi32(
                    acc1, _mm512_set1_epi32(static_cast<int>(w1)), bv);
                acc2 = _mm512_dpbusd_epi32(
                    acc2, _mm512_set1_epi32(static_cast<int>(w2)), bv);
                acc3 = _mm512_dpbusd_epi32(
                    acc3, _mm512_set1_epi32(static_cast<int>(w3)), bv);
            }
            requant_zmm(acc0, a.zero_point(i0), a.scale(i0), rs, sw,
                        mask, c.row(i0) + j0);
            requant_zmm(acc1, a.zero_point(i0 + 1), a.scale(i0 + 1),
                        rs, sw, mask, c.row(i0 + 1) + j0);
            requant_zmm(acc2, a.zero_point(i0 + 2), a.scale(i0 + 2),
                        rs, sw, mask, c.row(i0 + 2) + j0);
            requant_zmm(acc3, a.zero_point(i0 + 3), a.scale(i0 + 3),
                        rs, sw, mask, c.row(i0 + 3) + j0);
        }
        for (; i0 < m; ++i0) {  // ragged m tail, one row at a time
            const std::uint8_t *ar = a.row(i0);
            __m512i acc = _mm512_setzero_si512();
            for (std::size_t g = 0; g < kg; ++g) {
                const __m512i bv = _mm512_loadu_si512(
                    panel + g * QNR * QKG);
                std::uint32_t wq;
                std::memcpy(&wq, ar + g * QKG, 4);
                acc = _mm512_dpbusd_epi32(
                    acc, _mm512_set1_epi32(static_cast<int>(wq)), bv);
            }
            requant_zmm(acc, a.zero_point(i0), a.scale(i0), rs, sw,
                        mask, c.row(i0) + j0);
        }
    }
}

#else  // portable integer-exact fallback

void
qgemm_nt_kernel(const QActivations &a, const QMatrix &w, Matrix &c)
{
    const std::size_t m = a.rows;
    const std::size_t k = a.cols;
    const std::size_t n = w.rows();
    std::int32_t acc[QNR];
    for (std::size_t j0 = 0; j0 < n; j0 += QNR) {
        const std::size_t jrem = std::min(QNR, n - j0);
        for (std::size_t i = 0; i < m; ++i) {
            const std::uint8_t *ar = a.row(i);
            for (std::size_t j = 0; j < jrem; ++j) {
                const std::int8_t *wr = w.row(j0 + j);
                std::int32_t s = 0;
                for (std::size_t p = 0; p < k; ++p)
                    s += static_cast<std::int32_t>(ar[p]) *
                         static_cast<std::int32_t>(wr[p]);
                acc[j] = s;
            }
            requant_row(acc, a, i, w, j0, jrem, c.row(i));
        }
    }
}

#endif

}  // namespace

void
qgemm_nt(const QActivations &a, const QMatrix &w, Matrix &c)
{
    const std::size_t m = a.rows;
    const std::size_t k = a.cols;
    const std::size_t n = w.rows();
    assert(k == w.cols());
    assert(c.rows() == m && c.cols() == n);
    // int32 accumulation headroom: max |u8 * s8| = 32,640 per step.
    assert(k < 65536);
    if (m == 0 || n == 0 || k == 0)
        return;
    w.pack();
    ScopedOpTimer timer(op_stats().qgemm,
                        2ull * m * n * k);
    qgemm_nt_kernel(a, w, c);
}

void
qgemm_nt_ref(const QActivations &a, const QMatrix &w, Matrix &c)
{
    const std::size_t m = a.rows;
    const std::size_t k = a.cols;
    const std::size_t n = w.rows();
    assert(k == w.cols());
    assert(c.rows() == m && c.cols() == n);
    for (std::size_t i = 0; i < m; ++i) {
        const std::uint8_t *ar = a.row(i);
        const float sa = a.scale(i);
        const std::int32_t za = a.zero_point(i);
        float *cr = c.row(i);
        for (std::size_t j = 0; j < n; ++j) {
            const std::int8_t *wr = w.row(j);
            std::int64_t acc = 0;  // widened: the ref must not trap
            for (std::size_t p = 0; p < k; ++p)
                acc += static_cast<std::int64_t>(ar[p]) *
                       static_cast<std::int64_t>(wr[p]);
            // Same fmaf grouping as the kernels: bit-identical when
            // the int32 accumulation there did not overflow.
            cr[j] = std::fmaf(
                sa * w.scale(j),
                static_cast<float>(acc -
                                   static_cast<std::int64_t>(za) *
                                       w.row_sum(j)),
                cr[j]);
        }
    }
}

}  // namespace voyager::nn
