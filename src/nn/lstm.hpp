/**
 * @file
 * Single-layer LSTM with explicit backward-through-time. Sequences are
 * presented as T matrices of shape (batch, in_dim); the model consumes
 * the final hidden state (the Voyager heads predict from the last
 * step), so backward takes a gradient for h_T only.
 */
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/matrix.hpp"
#include "util/random.hpp"

namespace voyager::nn {

/** Single-layer LSTM (gate order i, f, g, o). */
class Lstm
{
  public:
    Lstm(std::size_t in_dim, std::size_t hidden, Rng &rng);

    /**
     * Run the sequence from zero initial state.
     *
     * The input sequence is borrowed, not copied: backward() reads
     * `xs` through a cached pointer, so the caller must keep `xs`
     * alive and unmodified until backward() (or the next forward())
     * — every model in this repo holds the sequence as a member
     * across the forward/backward pair.
     *
     * @param xs T inputs of shape (batch, in_dim)
     * @param h_last receives h_T (batch, hidden)
     */
    void forward(const std::vector<Matrix> &xs, Matrix &h_last);

    /**
     * Backprop through time from a gradient on h_T.
     * Accumulates parameter gradients; dxs receives per-step input
     * gradients (resized to match the cached forward inputs).
     */
    void backward(const Matrix &dh_last, std::vector<Matrix> &dxs);

    /**
     * forward() without retaining the per-step training caches: only
     * a rotating (cell, hidden) pair survives each step, so serving
     * keeps O(batch x hidden) state regardless of sequence length.
     * Bit-identical to forward() — both paths issue the same GEMMs
     * and share the fused gate-pass helper — but it invalidates the
     * training caches: backward() must not be called until the next
     * forward().
     */
    void forward_inference(const std::vector<Matrix> &xs,
                           Matrix &h_last);

    Param &wx() { return wx_; }
    Param &wh() { return wh_; }
    Param &bias() { return b_; }
    const Param &wx() const { return wx_; }
    const Param &wh() const { return wh_; }
    const Param &bias() const { return b_; }

    std::size_t in_dim() const { return wx_.value.rows(); }
    std::size_t hidden() const { return wh_.value.rows(); }

    /** Serialize wx, wh and bias (activation caches are transient). */
    void save_state(std::ostream &os) const;
    /** Restore parameters. @throws on shape mismatch. */
    void load_state(std::istream &is);

  private:
    Param wx_;  // (in, 4H)
    Param wh_;  // (H, 4H)
    Param b_;   // (1, 4H)

    // Forward caches. The input sequence is borrowed from the caller
    // (see forward()); the per-step activation buffers are grown, not
    // reallocated, across calls — steps_ bounds the live prefix.
    const std::vector<Matrix> *xs_ = nullptr;
    std::size_t steps_ = 0;
    std::vector<Matrix> gates_;  // (B, 4H) post-activation [i f g o]
    std::vector<Matrix> cs_;     // (B, H) cell states
    std::vector<Matrix> hs_;     // (B, H) hidden states

    // Rotating forward_inference state: one gate buffer plus the
    // previous step's cell/hidden rows, reused across calls.
    Matrix inf_z_;     // (B, 4H)
    Matrix inf_c_[2];  // (B, H) ping-pong cell state
    Matrix inf_h_;     // (B, H) hidden, updated in place per step
};

}  // namespace voyager::nn
