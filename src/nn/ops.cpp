#include "nn/ops.hpp"

#include <cassert>
#include <cmath>

namespace voyager::nn {

void
gemm_nn(const Matrix &a, const Matrix &b, Matrix &c)
{
    assert(a.cols() == b.rows());
    assert(c.rows() == a.rows() && c.cols() == b.cols());
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (std::size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f)
                continue;
            const float *brow = b.row(p);
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemm_tn(const Matrix &a, const Matrix &b, Matrix &c)
{
    assert(a.rows() == b.rows());
    assert(c.rows() == a.cols() && c.cols() == b.cols());
    const std::size_t k = a.rows();
    const std::size_t m = a.cols();
    const std::size_t n = b.cols();
    for (std::size_t p = 0; p < k; ++p) {
        const float *arow = a.row(p);
        const float *brow = b.row(p);
        for (std::size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c.row(i);
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemm_nt(const Matrix &a, const Matrix &b, Matrix &c)
{
    assert(a.cols() == b.cols());
    assert(c.rows() == a.rows() && c.cols() == b.rows());
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.rows();
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = b.row(j);
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] += acc;
        }
    }
}

void
add_inplace(Matrix &y, const Matrix &x)
{
    assert(y.rows() == x.rows() && y.cols() == x.cols());
    float *yd = y.data();
    const float *xd = x.data();
    for (std::size_t i = 0; i < y.size(); ++i)
        yd[i] += xd[i];
}

void
axpy(Matrix &y, float alpha, const Matrix &x)
{
    assert(y.size() == x.size());
    float *yd = y.data();
    const float *xd = x.data();
    for (std::size_t i = 0; i < y.size(); ++i)
        yd[i] += alpha * xd[i];
}

void
scale_inplace(Matrix &y, float alpha)
{
    float *yd = y.data();
    for (std::size_t i = 0; i < y.size(); ++i)
        yd[i] *= alpha;
}

void
add_bias(Matrix &y, const Matrix &bias)
{
    assert(bias.rows() == 1 && bias.cols() == y.cols());
    const float *b = bias.data();
    for (std::size_t r = 0; r < y.rows(); ++r) {
        float *row = y.row(r);
        for (std::size_t c = 0; c < y.cols(); ++c)
            row[c] += b[c];
    }
}

void
bias_backward(const Matrix &dy, Matrix &bias_grad)
{
    assert(bias_grad.rows() == 1 && bias_grad.cols() == dy.cols());
    float *g = bias_grad.data();
    for (std::size_t r = 0; r < dy.rows(); ++r) {
        const float *row = dy.row(r);
        for (std::size_t c = 0; c < dy.cols(); ++c)
            g[c] += row[c];
    }
}

void
softmax_rows(Matrix &m)
{
    for (std::size_t r = 0; r < m.rows(); ++r) {
        float *row = m.row(r);
        float mx = row[0];
        for (std::size_t c = 1; c < m.cols(); ++c)
            mx = std::max(mx, row[c]);
        float sum = 0.0f;
        for (std::size_t c = 0; c < m.cols(); ++c) {
            row[c] = std::exp(row[c] - mx);
            sum += row[c];
        }
        const float inv = 1.0f / sum;
        for (std::size_t c = 0; c < m.cols(); ++c)
            row[c] *= inv;
    }
}

void
sigmoid_inplace(Matrix &m)
{
    float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        d[i] = 1.0f / (1.0f + std::exp(-d[i]));
}

void
tanh_inplace(Matrix &m)
{
    float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        d[i] = std::tanh(d[i]);
}

void
hadamard(const Matrix &a, const Matrix &b, Matrix &y)
{
    assert(a.size() == b.size() && a.size() == y.size());
    const float *ad = a.data();
    const float *bd = b.data();
    float *yd = y.data();
    for (std::size_t i = 0; i < y.size(); ++i)
        yd[i] = ad[i] * bd[i];
}

void
hadamard_add(const Matrix &a, const Matrix &b, Matrix &y)
{
    assert(a.size() == b.size() && a.size() == y.size());
    const float *ad = a.data();
    const float *bd = b.data();
    float *yd = y.data();
    for (std::size_t i = 0; i < y.size(); ++i)
        yd[i] += ad[i] * bd[i];
}

double
sum_squares(const Matrix &m)
{
    double acc = 0.0;
    const float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        acc += static_cast<double>(d[i]) * d[i];
    return acc;
}

void
clip_gradients(const std::vector<Matrix *> &grads, float max_norm)
{
    double total = 0.0;
    for (const Matrix *g : grads)
        total += sum_squares(*g);
    const double norm = std::sqrt(total);
    if (norm <= max_norm || norm == 0.0)
        return;
    const float scale = static_cast<float>(max_norm / norm);
    for (Matrix *g : grads)
        scale_inplace(*g, scale);
}

}  // namespace voyager::nn
