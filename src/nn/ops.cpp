#include "nn/ops.hpp"

#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>

namespace voyager::nn {

OpStats &
op_stats()
{
    static OpStats stats;
    return stats;
}

void
export_op_stats(StatRegistry &reg, const std::string &prefix)
{
    const OpStats &s = op_stats();
    const auto one = [&reg](const std::string &p, const OpClassStats &c,
                            const char *work_name) {
        reg.counter(p + ".calls") = c.calls;
        reg.counter(p + "." + work_name) = c.work;
        reg.gauge(p + ".seconds", true) = c.seconds;
    };
    one(prefix + ".gemm", s.gemm, "flops");
    one(prefix + ".qgemm", s.qgemm, "ops");
    one(prefix + ".lstm_gate", s.lstm_gate, "elements");
    one(prefix + ".attention", s.attention, "elements");
}

namespace {

double
monotonic_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

ScopedOpTimer::ScopedOpTimer(OpClassStats &s, std::uint64_t work)
    : s_(s), t0_(monotonic_seconds())
{
    ++s_.calls;
    s_.work += work;
}

ScopedOpTimer::~ScopedOpTimer()
{
    s_.seconds += monotonic_seconds() - t0_;
}

namespace {

// ---------------------------------------------------------------------
// Packed register-blocked GEMM microkernel (single core).
//
// GotoBLAS-style: A is packed into MR-row panels (column-major within
// the panel), B into NR-column panels (row-major within the panel), so
// the microkernel streams both with unit stride and keeps an MR x NR
// accumulator tile in vector registers across the whole k loop. The
// tile is expressed with ISA-agnostic GCC/Clang vector extensions
// (the compiler legalises them for whatever -march is active, so the
// same source serves AVX-512, AVX2 and scalar targets); each k step
// is one broadcast of an A element FMA'd against B vectors. Panel
// edges are zero-padded: padded lanes compute zeros and the
// write-back masks them off, which keeps the kernel branch-free for
// dense activations (no data-dependent zero-skip — that defeated
// vectorisation in the seed kernels).
// ---------------------------------------------------------------------

constexpr std::size_t MR = 8;   ///< rows per register tile
constexpr std::size_t NR = 32;  ///< cols per register tile

std::vector<float> &
pack_buf_a()
{
    static thread_local std::vector<float> buf;
    return buf;
}

std::vector<float> &
pack_buf_b()
{
    static thread_local std::vector<float> buf;
    return buf;
}

/**
 * Pack one MR-row panel of op(A) (m,k) starting at row i0:
 * dst[p][i] = op(A)(i0+i, p), zero-padded to MR rows. trans selects
 * op(A) = A^T, reading A as (k,m).
 */
void
pack_a_tile(const Matrix &a, bool trans, std::size_t i0,
            std::size_t irem, std::size_t k, float *dst)
{
    if (trans) {
        // op(A)(i, p) = A(p, i): each p reads MR contiguous floats.
        for (std::size_t p = 0; p < k; ++p) {
            const float *src = a.row(p) + i0;
            float *d = dst + p * MR;
            for (std::size_t i = 0; i < irem; ++i)
                d[i] = src[i];
            for (std::size_t i = irem; i < MR; ++i)
                d[i] = 0.0f;
        }
    } else {
        // Column walk over A's rows i0..i0+irem.
        for (std::size_t p = 0; p < k; ++p) {
            float *d = dst + p * MR;
            for (std::size_t i = 0; i < irem; ++i)
                d[i] = a.at(i0 + i, p);
            for (std::size_t i = irem; i < MR; ++i)
                d[i] = 0.0f;
        }
    }
}

/**
 * Pack one NR-col panel of op(B) (k,n) starting at column j0:
 * dst[p][j] = op(B)(p, j0+j), zero-padded to NR columns. trans
 * selects op(B) = B^T, reading B as (n,k).
 */
void
pack_b_tile(const Matrix &b, bool trans, std::size_t j0,
            std::size_t jrem, std::size_t k, float *dst)
{
    if (trans) {
        // op(B)(p, j) = B(j, p): column walk over B's rows.
        for (std::size_t p = 0; p < k; ++p) {
            float *d = dst + p * NR;
            for (std::size_t j = 0; j < jrem; ++j)
                d[j] = b.at(j0 + j, p);
            for (std::size_t j = jrem; j < NR; ++j)
                d[j] = 0.0f;
        }
    } else {
        // Contiguous NR-float strips of each row of B.
        for (std::size_t p = 0; p < k; ++p) {
            const float *src = b.row(p) + j0;
            float *d = dst + p * NR;
            for (std::size_t j = 0; j < jrem; ++j)
                d[j] = src[j];
            for (std::size_t j = jrem; j < NR; ++j)
                d[j] = 0.0f;
        }
    }
}

#if defined(__GNUC__) || defined(__clang__)

/** 16-float vector; aligned(4) legalises unaligned loads/stores. */
using vfloat
    = float __attribute__((vector_size(64), aligned(4), may_alias));
constexpr std::size_t VL = 16;        ///< lanes per vector
constexpr std::size_t NV = NR / VL;   ///< vectors per tile row

/**
 * MR x NR register tile: C[0:mrem,0:nrem] += Apanel * Bpanel. The
 * panels are walked with explicit strides so full tiles can be read
 * straight out of the source matrices (stride = leading dimension)
 * instead of packed copies; packed panels use stride MR / NR. Callers
 * guarantee MR (NR) floats are readable at every step — ragged edge
 * tiles always come packed and zero-padded.
 */
void
micro_kernel(std::size_t k, const float *__restrict ap,
             std::size_t astride, const float *__restrict bp,
             std::size_t bstride, float *__restrict c, std::size_t ldc,
             std::size_t mrem, std::size_t nrem)
{
    vfloat acc[MR][NV] = {};
    for (std::size_t p = 0; p < k; ++p) {
        const float *__restrict arow = ap + p * astride;
        const auto *__restrict brow
            = reinterpret_cast<const vfloat *>(bp + p * bstride);
        for (std::size_t i = 0; i < MR; ++i)
            for (std::size_t w = 0; w < NV; ++w)
                acc[i][w] += brow[w] * arow[i];
    }
    if (mrem == MR && nrem == NR) {
        for (std::size_t i = 0; i < MR; ++i) {
            auto *crow = reinterpret_cast<vfloat *>(c + i * ldc);
            for (std::size_t w = 0; w < NV; ++w)
                crow[w] += acc[i][w];
        }
    } else {
        for (std::size_t i = 0; i < mrem; ++i) {
            float *crow = c + i * ldc;
            const float *accrow
                = reinterpret_cast<const float *>(acc[i]);
            for (std::size_t j = 0; j < nrem; ++j)
                crow[j] += accrow[j];
        }
    }
}

#else  // fallback for compilers without vector extensions

void
micro_kernel(std::size_t k, const float *ap, std::size_t astride,
             const float *bp, std::size_t bstride, float *c,
             std::size_t ldc, std::size_t mrem, std::size_t nrem)
{
    float acc[MR][NR] = {};
    for (std::size_t p = 0; p < k; ++p) {
        const float *arow = ap + p * astride;
        const float *brow = bp + p * bstride;
        for (std::size_t i = 0; i < MR; ++i)
            for (std::size_t j = 0; j < NR; ++j)
                acc[i][j] += arow[i] * brow[j];
    }
    for (std::size_t i = 0; i < mrem; ++i) {
        float *crow = c + i * ldc;
        for (std::size_t j = 0; j < nrem; ++j)
            crow[j] += acc[i][j];
    }
}

#endif

/**
 * Shared driver: C += op(A) * op(B). Operands whose memory layout
 * already matches the panel layout are read in place (A when
 * transposed, B when not — both then walk contiguous MR/NR-float
 * strips per k step); only layout-mismatched operands and ragged edge
 * tiles are packed into reused thread-local scratch.
 */
void
gemm_packed(const Matrix &a, bool a_trans, const Matrix &b, bool b_trans,
            Matrix &c)
{
    const std::size_t m = c.rows();
    const std::size_t n = c.cols();
    const std::size_t k = a_trans ? a.rows() : a.cols();
    ScopedOpTimer timer(op_stats().gemm, 2ull * m * n * k);
    if (m == 0 || n == 0 || k == 0)
        return;

    const std::size_t tiles_m = (m + MR - 1) / MR;
    const std::size_t tiles_n = (n + NR - 1) / NR;
    const bool a_direct = a_trans;    // op(A) rows are contiguous in A
    const bool b_direct = !b_trans;   // op(B) rows are contiguous in B
    const std::size_t a_edge = m % MR;
    const std::size_t b_edge = n % NR;

    // Pack everything layout-mismatched; in direct mode pack only the
    // zero-padded ragged edge tile (if any) at the buffer's start.
    auto &abuf = pack_buf_a();
    auto &bbuf = pack_buf_b();
    if (!a_direct) {
        if (abuf.size() < tiles_m * k * MR)
            abuf.resize(tiles_m * k * MR);
        for (std::size_t it = 0; it < tiles_m; ++it)
            pack_a_tile(a, a_trans, it * MR,
                        std::min(MR, m - it * MR), k,
                        abuf.data() + it * k * MR);
    } else if (a_edge != 0) {
        if (abuf.size() < k * MR)
            abuf.resize(k * MR);
        pack_a_tile(a, a_trans, m - a_edge, a_edge, k, abuf.data());
    }
    if (!b_direct) {
        if (bbuf.size() < tiles_n * k * NR)
            bbuf.resize(tiles_n * k * NR);
        for (std::size_t jt = 0; jt < tiles_n; ++jt)
            pack_b_tile(b, b_trans, jt * NR,
                        std::min(NR, n - jt * NR), k,
                        bbuf.data() + jt * k * NR);
    } else if (b_edge != 0) {
        if (bbuf.size() < k * NR)
            bbuf.resize(k * NR);
        pack_b_tile(b, b_trans, n - b_edge, b_edge, k, bbuf.data());
    }

    for (std::size_t jt = 0; jt < tiles_n; ++jt) {
        const std::size_t j0 = jt * NR;
        const std::size_t nrem = std::min(NR, n - j0);
        const float *bp;
        std::size_t bstride;
        if (b_direct && nrem == NR) {
            bp = b.data() + j0;
            bstride = b.cols();
        } else {
            bp = b_direct ? bbuf.data() : bbuf.data() + jt * k * NR;
            bstride = NR;
        }
        for (std::size_t it = 0; it < tiles_m; ++it) {
            const std::size_t i0 = it * MR;
            const std::size_t mrem = std::min(MR, m - i0);
            const float *ap;
            std::size_t astride;
            if (a_direct && mrem == MR) {
                ap = a.data() + i0;
                astride = a.cols();
            } else {
                ap = a_direct ? abuf.data()
                              : abuf.data() + it * k * MR;
                astride = MR;
            }
            micro_kernel(k, ap, astride, bp, bstride,
                         c.row(i0) + j0, c.cols(), mrem, nrem);
        }
    }
}

}  // namespace

void
gemm_nn(const Matrix &a, const Matrix &b, Matrix &c)
{
    assert(a.cols() == b.rows());
    assert(c.rows() == a.rows() && c.cols() == b.cols());
    gemm_packed(a, false, b, false, c);
}

void
gemm_tn(const Matrix &a, const Matrix &b, Matrix &c)
{
    assert(a.rows() == b.rows());
    assert(c.rows() == a.cols() && c.cols() == b.cols());
    gemm_packed(a, true, b, false, c);
}

void
gemm_nt(const Matrix &a, const Matrix &b, Matrix &c)
{
    assert(a.cols() == b.cols());
    assert(c.rows() == a.rows() && c.cols() == b.rows());
    gemm_packed(a, false, b, true, c);
}

// ---------------------------------------------------------------------
// Seed-era naive kernels, retained verbatim as references.
// ---------------------------------------------------------------------

void
gemm_nn_ref(const Matrix &a, const Matrix &b, Matrix &c)
{
    assert(a.cols() == b.rows());
    assert(c.rows() == a.rows() && c.cols() == b.cols());
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (std::size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f)
                continue;
            const float *brow = b.row(p);
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemm_tn_ref(const Matrix &a, const Matrix &b, Matrix &c)
{
    assert(a.rows() == b.rows());
    assert(c.rows() == a.cols() && c.cols() == b.cols());
    const std::size_t k = a.rows();
    const std::size_t m = a.cols();
    const std::size_t n = b.cols();
    for (std::size_t p = 0; p < k; ++p) {
        const float *arow = a.row(p);
        const float *brow = b.row(p);
        for (std::size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c.row(i);
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemm_nt_ref(const Matrix &a, const Matrix &b, Matrix &c)
{
    assert(a.cols() == b.cols());
    assert(c.rows() == a.rows() && c.cols() == b.rows());
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.rows();
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = b.row(j);
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] += acc;
        }
    }
}

void
add_inplace(Matrix &y, const Matrix &x)
{
    assert(y.rows() == x.rows() && y.cols() == x.cols());
    float *yd = y.data();
    const float *xd = x.data();
    for (std::size_t i = 0; i < y.size(); ++i)
        yd[i] += xd[i];
}

void
axpy(Matrix &y, float alpha, const Matrix &x)
{
    assert(y.size() == x.size());
    float *yd = y.data();
    const float *xd = x.data();
    for (std::size_t i = 0; i < y.size(); ++i)
        yd[i] += alpha * xd[i];
}

void
scale_inplace(Matrix &y, float alpha)
{
    float *yd = y.data();
    for (std::size_t i = 0; i < y.size(); ++i)
        yd[i] *= alpha;
}

void
add_bias(Matrix &y, const Matrix &bias)
{
    assert(bias.rows() == 1 && bias.cols() == y.cols());
    const float *b = bias.data();
    for (std::size_t r = 0; r < y.rows(); ++r) {
        float *row = y.row(r);
        for (std::size_t c = 0; c < y.cols(); ++c)
            row[c] += b[c];
    }
}

void
bias_backward(const Matrix &dy, Matrix &bias_grad)
{
    assert(bias_grad.rows() == 1 && bias_grad.cols() == dy.cols());
    float *g = bias_grad.data();
    for (std::size_t r = 0; r < dy.rows(); ++r) {
        const float *row = dy.row(r);
        for (std::size_t c = 0; c < dy.cols(); ++c)
            g[c] += row[c];
    }
}

void
softmax_rows(Matrix &m)
{
    for (std::size_t r = 0; r < m.rows(); ++r) {
        float *row = m.row(r);
        float mx = row[0];
        for (std::size_t c = 1; c < m.cols(); ++c)
            mx = std::max(mx, row[c]);
        float sum = 0.0f;
        for (std::size_t c = 0; c < m.cols(); ++c) {
            row[c] = std::exp(row[c] - mx);
            sum += row[c];
        }
        const float inv = 1.0f / sum;
        for (std::size_t c = 0; c < m.cols(); ++c)
            row[c] *= inv;
    }
}

void
sigmoid_inplace(Matrix &m)
{
    float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        d[i] = 1.0f / (1.0f + std::exp(-d[i]));
}

void
tanh_inplace(Matrix &m)
{
    float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        d[i] = std::tanh(d[i]);
}

void
hadamard(const Matrix &a, const Matrix &b, Matrix &y)
{
    assert(a.size() == b.size() && a.size() == y.size());
    const float *ad = a.data();
    const float *bd = b.data();
    float *yd = y.data();
    for (std::size_t i = 0; i < y.size(); ++i)
        yd[i] = ad[i] * bd[i];
}

void
hadamard_add(const Matrix &a, const Matrix &b, Matrix &y)
{
    assert(a.size() == b.size() && a.size() == y.size());
    const float *ad = a.data();
    const float *bd = b.data();
    float *yd = y.data();
    for (std::size_t i = 0; i < y.size(); ++i)
        yd[i] += ad[i] * bd[i];
}

double
sum_squares(const Matrix &m)
{
    double acc = 0.0;
    const float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        acc += static_cast<double>(d[i]) * d[i];
    return acc;
}

bool
is_finite(const Matrix &m)
{
    const float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        if (!std::isfinite(d[i]))
            return false;
    return true;
}

void
clip_gradients(const std::vector<Matrix *> &grads, float max_norm)
{
    double total = 0.0;
    for (const Matrix *g : grads)
        total += sum_squares(*g);
    const double norm = std::sqrt(total);
    // A NaN/Inf norm means a poisoned gradient: `norm <= max_norm` is
    // false for NaN, and scaling by max_norm/norm would smear the
    // poison across every parameter. Leave the gradients untouched —
    // Adam::step detects the same condition and skips the update.
    if (norm <= max_norm || norm == 0.0 || !std::isfinite(norm))
        return;
    const float scale = static_cast<float>(max_norm / norm);
    for (Matrix *g : grads)
        scale_inplace(*g, scale);
}

}  // namespace voyager::nn
