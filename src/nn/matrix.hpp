/**
 * @file
 * Row-major float matrix — the single tensor type of the NN library.
 * Batches are rows; time steps are separate matrices. Everything the
 * Voyager model needs (embedding rows, LSTM activations, logits) is a
 * 2-D array, so we keep the abstraction at exactly that level.
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace voyager::nn {

/** Dense row-major float matrix. */
class Matrix
{
  public:
    Matrix() = default;

    Matrix(std::size_t rows, std::size_t cols, float value = 0.0f)
        : rows_(rows), cols_(cols), data_(rows * cols, value)
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &
    at(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    float
    at(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float *row(std::size_t r) { return data_.data() + r * cols_; }
    const float *row(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
    void zero() { fill(0.0f); }

    /** Reshape in place; total size must be preserved. */
    void
    reshape(std::size_t rows, std::size_t cols)
    {
        assert(rows * cols == data_.size());
        rows_ = rows;
        cols_ = cols;
    }

    /** Resize, discarding contents (fills with zero). */
    void
    resize(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, 0.0f);
    }

    /**
     * Resize without clearing retained elements; contents are
     * unspecified. Only for consumers that overwrite every element
     * (e.g. embedding gather). GEMM outputs must use resize() — the
     * GEMM kernels accumulate into their output (see ops.hpp).
     */
    void
    resize_uninit(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    bool operator==(const Matrix &) const = default;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** A trainable parameter: weights plus an accumulated gradient. */
struct Param
{
    Matrix value;
    Matrix grad;

    Param() = default;
    Param(std::size_t rows, std::size_t cols)
        : value(rows, cols), grad(rows, cols)
    {
    }

    void zero_grad() { grad.zero(); }
    std::size_t size() const { return value.size(); }
};

}  // namespace voyager::nn
