/**
 * @file
 * Dense kernels: GEMM (with transpose variants), bias/elementwise ops,
 * row softmax and sigmoid. All NN compute funnels through these.
 *
 * GEMM contract — ACCUMULATE, not overwrite
 * -----------------------------------------
 * All three GEMM variants compute `C += op(A) * op(B)`: they add into
 * the output and never clear it. Callers must zero (or deliberately
 * seed) `c` first. `Matrix::resize()` zero-fills, so resizing the
 * output immediately before the call is sufficient; reusing a buffer
 * from a previous step without zeroing silently folds stale values
 * into the product. The accumulate contract is load-bearing: weight
 * gradients (`Param::grad`) sum contributions across timesteps and
 * batches by calling GEMM repeatedly on the same output.
 *
 * The `gemm_*` entry points run a packed, register-blocked microkernel
 * (single-core, auto-vectorised); the `gemm_*_ref` functions keep the
 * seed's naive loops as a slow, independently-written reference for
 * equivalence tests and speedup baselines.
 */
#pragma once

#include <cstdint>
#include <string>

#include "nn/matrix.hpp"
#include "util/stat_registry.hpp"

namespace voyager::nn {

/** Running totals for one kernel class. */
struct OpClassStats
{
    std::uint64_t calls = 0;
    /** FLOPs for GEMM (2mnk); processed elements for pointwise ops. */
    std::uint64_t work = 0;
    /** Wall-clock seconds spent inside the kernels. */
    double seconds = 0.0;
};

/**
 * Op-level counters for the NN hot path. Cheap enough to stay always
 * on (two clock reads per call, micro-seconds-scale kernels); gives
 * every bench and future perf PR a calls/FLOPs/seconds baseline per
 * op class. Reset before a measured region, read after.
 */
struct OpStats
{
    OpClassStats gemm;       ///< all gemm_nn/tn/nt calls
    OpClassStats qgemm;      ///< int8 qgemm_nt calls (work = 2mnk ops)
    OpClassStats lstm_gate;  ///< fused LSTM gate pointwise pass
    OpClassStats attention;  ///< MoE attention forward/backward

    void reset() { *this = OpStats(); }
};

/** Process-wide counters (the NN library is single-threaded). */
OpStats &op_stats();

/**
 * Export the process-wide op counters into `reg` under `<prefix>.`:
 * `.gemm.calls`, `.gemm.flops`, `.qgemm.ops`, `.lstm_gate.elements`,
 * `.attention.elements` plus per-class `.seconds` (volatile). Assigns
 * the cumulative totals, so re-export is idempotent.
 */
void export_op_stats(StatRegistry &reg,
                     const std::string &prefix = "nn");

/** RAII timer charging one kernel invocation to an op class. */
class ScopedOpTimer
{
  public:
    ScopedOpTimer(OpClassStats &s, std::uint64_t work);
    ~ScopedOpTimer();

    ScopedOpTimer(const ScopedOpTimer &) = delete;
    ScopedOpTimer &operator=(const ScopedOpTimer &) = delete;

  private:
    OpClassStats &s_;
    double t0_;
};

/** C += A * B.  A:(m,k) B:(k,n) C:(m,n). Accumulates (see above). */
void gemm_nn(const Matrix &a, const Matrix &b, Matrix &c);

/** C += A^T * B.  A:(k,m) B:(k,n) C:(m,n). Used for weight grads. */
void gemm_tn(const Matrix &a, const Matrix &b, Matrix &c);

/** C += A * B^T.  A:(m,k) B:(n,k) C:(m,n). Used for input grads. */
void gemm_nt(const Matrix &a, const Matrix &b, Matrix &c);

/** Seed-era naive C += A * B; reference for tests and benchmarks. */
void gemm_nn_ref(const Matrix &a, const Matrix &b, Matrix &c);

/** Seed-era naive C += A^T * B; reference implementation. */
void gemm_tn_ref(const Matrix &a, const Matrix &b, Matrix &c);

/** Seed-era naive C += A * B^T; reference implementation. */
void gemm_nt_ref(const Matrix &a, const Matrix &b, Matrix &c);

/** y += x (same shape). */
void add_inplace(Matrix &y, const Matrix &x);

/** y += alpha * x. */
void axpy(Matrix &y, float alpha, const Matrix &x);

/** Scale in place. */
void scale_inplace(Matrix &y, float alpha);

/** Add a bias row vector (1,n) to every row of (m,n). */
void add_bias(Matrix &y, const Matrix &bias);

/** bias_grad (1,n) += column sums of dy (m,n). */
void bias_backward(const Matrix &dy, Matrix &bias_grad);

/** Row-wise softmax in place. Numerically stabilized. */
void softmax_rows(Matrix &m);

/** Elementwise logistic sigmoid in place. */
void sigmoid_inplace(Matrix &m);

/** Elementwise tanh in place. */
void tanh_inplace(Matrix &m);

/** Elementwise product: y = a ⊙ b. */
void hadamard(const Matrix &a, const Matrix &b, Matrix &y);

/** y += a ⊙ b. */
void hadamard_add(const Matrix &a, const Matrix &b, Matrix &y);

/** Sum of squares of all elements. */
double sum_squares(const Matrix &m);

/** True when every element is finite (no NaN/Inf). */
bool is_finite(const Matrix &m);

/** Global gradient-norm clipping over a set of gradients. A
 *  non-finite global norm leaves the gradients untouched (the caller
 *  is expected to skip the step; see Adam::step). */
void clip_gradients(const std::vector<Matrix *> &grads, float max_norm);

}  // namespace voyager::nn
