/**
 * @file
 * Dense kernels: GEMM (with transpose variants), bias/elementwise ops,
 * row softmax and sigmoid. All NN compute funnels through these.
 */
#pragma once

#include "nn/matrix.hpp"

namespace voyager::nn {

/** C += A * B.  A:(m,k) B:(k,n) C:(m,n). */
void gemm_nn(const Matrix &a, const Matrix &b, Matrix &c);

/** C += A^T * B.  A:(k,m) B:(k,n) C:(m,n). Used for weight grads. */
void gemm_tn(const Matrix &a, const Matrix &b, Matrix &c);

/** C += A * B^T.  A:(m,k) B:(n,k) C:(m,n). Used for input grads. */
void gemm_nt(const Matrix &a, const Matrix &b, Matrix &c);

/** y += x (same shape). */
void add_inplace(Matrix &y, const Matrix &x);

/** y += alpha * x. */
void axpy(Matrix &y, float alpha, const Matrix &x);

/** Scale in place. */
void scale_inplace(Matrix &y, float alpha);

/** Add a bias row vector (1,n) to every row of (m,n). */
void add_bias(Matrix &y, const Matrix &bias);

/** bias_grad (1,n) += column sums of dy (m,n). */
void bias_backward(const Matrix &dy, Matrix &bias_grad);

/** Row-wise softmax in place. Numerically stabilized. */
void softmax_rows(Matrix &m);

/** Elementwise logistic sigmoid in place. */
void sigmoid_inplace(Matrix &m);

/** Elementwise tanh in place. */
void tanh_inplace(Matrix &m);

/** Elementwise product: y = a ⊙ b. */
void hadamard(const Matrix &a, const Matrix &b, Matrix &y);

/** y += a ⊙ b. */
void hadamard_add(const Matrix &a, const Matrix &b, Matrix &y);

/** Sum of squares of all elements. */
double sum_squares(const Matrix &m);

/** Global gradient-norm clipping over a set of gradients. */
void clip_gradients(const std::vector<Matrix *> &grads, float max_norm);

}  // namespace voyager::nn
