/**
 * @file
 * Quantized tensor types for the int8 inference engine (DESIGN.md
 * §5.13). Two representations, matching what AVX512-VNNI's
 * `vpdpbusd` (u8 x s8 -> s32) wants to consume:
 *
 *  - QMatrix: weights, signed int8 with a *symmetric per-row* scale
 *    (row = output channel; zero point is implicitly 0, so pruned
 *    zeros stay exactly zero). Carries precomputed per-row element
 *    sums for the activation zero-point correction and an optional
 *    packed layout for the qgemm microkernel.
 *  - QActivations: activations, unsigned int8 with *dynamic per-row*
 *    (per-sample) affine scale/zero-point chosen per forward call, so
 *    one outlier sample in a batch cannot coarsen every other row's
 *    grid.
 *
 * The requantization identity used throughout qops.cpp: with
 * activation a_i = sa_i*(qa - za_i) for batch row i and weight
 * w_j = sw_j*qw_j,
 *
 *   sum_k a_ik w_jk
 *       = sa_i*sw_j * (sum_k qa_ik qw_jk - za_i * sum_k qw_jk)
 *
 * so one int32 dot product plus the precomputed row sum recovers the
 * fp32 result exactly up to the quantization of the inputs.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.hpp"

namespace voyager::nn {

/** Unsigned-int8 affine-quantized activation matrix (row-major). */
struct QActivations
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    /** rows x kp values, each row zero-padded to kp = 4*ceil(k/4). */
    std::vector<std::uint8_t> q;
    /** Row stride (cols rounded up to a multiple of 4). */
    std::size_t stride = 0;
    /** Per-row affine grid (row = batch sample). */
    std::vector<float> scales;
    std::vector<std::int32_t> zero_points;

    const std::uint8_t *row(std::size_t r) const
    {
        return q.data() + r * stride;
    }
    float scale(std::size_t r) const { return scales[r]; }
    std::int32_t zero_point(std::size_t r) const
    {
        return zero_points[r];
    }
};

/**
 * Dynamically quantize `x` to u8 with one affine scale/zero-point per
 * row. Each row's range is forced to include 0 so its zero point is
 * exact (padding lanes then contribute nothing to qgemm). Buffers in
 * `out` are reused across calls.
 */
void quantize_activations(const Matrix &x, QActivations &out);

/**
 * Signed-int8 weight matrix with symmetric per-row scales. Rows are
 * output channels: a Linear/LSTM weight stored fp32 as (in, out) is
 * quantized with `transpose = true` into a (out, in) QMatrix so each
 * row carries one output channel at contiguous, per-channel scale —
 * exactly the B^T operand qgemm_nt consumes. Embedding tables
 * (vocab, dim) use `transpose = false`: one scale per token row.
 */
class QMatrix
{
  public:
    QMatrix() = default;

    /**
     * Quantize `w`. Per-row scale = max|row| / 127 (so the extreme
     * element maps to exactly ±127 and re-quantizing an already
     * quantize-dequantized matrix is the identity); all-zero rows get
     * scale 0 and contribute exactly 0 everywhere downstream.
     * @param transpose quantize per *column* of `w`, storing row r of
     *        the QMatrix as column r of `w` (weight layout (in, out)).
     */
    static QMatrix quantize(const Matrix &w, bool transpose);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    const std::int8_t *row(std::size_t r) const
    {
        return q_.data() + r * cols_;
    }
    float scale(std::size_t r) const { return scales_[r]; }
    std::int32_t row_sum(std::size_t r) const { return row_sums_[r]; }
    const std::vector<float> &scales() const { return scales_; }
    /** Contiguous per-row scales/sums for vectorized requantize. */
    const float *scales_ptr() const { return scales_.data(); }
    const std::int32_t *row_sums_ptr() const
    {
        return row_sums_.data();
    }

    /** Dequantize back to fp32 in this matrix's (rows, cols) layout. */
    Matrix dequantize() const;

    /** int8 payload bytes: values plus per-row fp32 scales. */
    std::uint64_t bytes() const
    {
        return q_.size() + scales_.size() * sizeof(float);
    }

    /**
     * VNNI panel layout, built lazily by qgemm (or eagerly via
     * pack()): ceil(rows/16) tiles of 16 output channels, each tile
     * ceil(cols/4) groups of 4 k-values laid out [group][channel][4]
     * — one 64-byte zmm load per group. Ragged edges are zero-padded,
     * which is exact (0 weight annihilates any activation byte).
     */
    void pack() const;
    const std::int8_t *packed() const
    {
        return packed_.empty() ? nullptr : packed_.data();
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::int8_t> q_;          ///< row-major (rows, cols)
    std::vector<float> scales_;           ///< per row
    std::vector<std::int32_t> row_sums_;  ///< per row: sum_k q
    mutable std::vector<std::int8_t> packed_;
};

}  // namespace voyager::nn
