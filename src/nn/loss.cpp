#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/ops.hpp"

namespace voyager::nn {

double
softmax_ce_loss(const Matrix &logits,
                const std::vector<std::int32_t> &labels, Matrix &dlogits)
{
    const std::size_t batch = logits.rows();
    const std::size_t classes = logits.cols();
    assert(labels.size() == batch);

    dlogits = logits;
    softmax_rows(dlogits);

    double loss = 0.0;
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (std::size_t r = 0; r < batch; ++r) {
        const auto y = labels[r];
        assert(y >= 0 && static_cast<std::size_t>(y) < classes);
        float *row = dlogits.row(r);
        loss -= std::log(std::max(row[y], 1e-12f));
        row[y] -= 1.0f;
        for (std::size_t c = 0; c < classes; ++c)
            row[c] *= inv_batch;
    }
    return loss / static_cast<double>(batch);
}

double
bce_multilabel_loss(const Matrix &logits,
                    const std::vector<std::vector<std::int32_t>> &labels,
                    Matrix &dlogits, float pos_weight)
{
    const std::size_t batch = logits.rows();
    const std::size_t classes = logits.cols();
    assert(labels.size() == batch);

    dlogits.resize(batch, classes);
    double loss = 0.0;
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (std::size_t r = 0; r < batch; ++r) {
        const float *z = logits.row(r);
        float *dz = dlogits.row(r);
        // All-negative pass, then patch the positives.
        for (std::size_t c = 0; c < classes; ++c) {
            const float s = 1.0f / (1.0f + std::exp(-z[c]));
            // -log(1 - sigmoid(z)) = z + log(1 + exp(-z)) stably:
            loss += std::max(z[c], 0.0f) +
                    std::log1p(std::exp(-std::fabs(z[c])));
            dz[c] = s * inv_batch;
        }
        for (const auto y : labels[r]) {
            assert(y >= 0 && static_cast<std::size_t>(y) < classes);
            // Swap the negative term -log(1-s) for pos_weight copies
            // of the positive term -log(s).
            const float neg_term =
                std::max(z[y], 0.0f) +
                std::log1p(std::exp(-std::fabs(z[y])));
            const float pos_term = neg_term - z[y];  // = -log(sigmoid)
            loss += pos_weight * pos_term - neg_term;
            const float s = 1.0f / (1.0f + std::exp(-z[y]));
            dz[y] = pos_weight * (s - 1.0f) * inv_batch;
        }
    }
    return loss / static_cast<double>(batch);
}

std::vector<std::int32_t>
argmax_rows(const Matrix &m)
{
    std::vector<std::int32_t> out(m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const float *row = m.row(r);
        std::size_t best = 0;
        for (std::size_t c = 1; c < m.cols(); ++c)
            if (row[c] > row[best])
                best = c;
        out[r] = static_cast<std::int32_t>(best);
    }
    return out;
}

std::vector<std::int32_t>
topk_row(const Matrix &m, std::size_t row, std::size_t k)
{
    const float *r = m.row(row);
    std::vector<std::int32_t> idx(m.cols());
    for (std::size_t c = 0; c < m.cols(); ++c)
        idx[c] = static_cast<std::int32_t>(c);
    const std::size_t kk = std::min(k, idx.size());
    std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                      [r](std::int32_t a, std::int32_t b) {
                          return r[a] > r[b];
                      });
    idx.resize(kk);
    return idx;
}

}  // namespace voyager::nn
