/**
 * @file
 * Adam optimizer with dense updates for ordinary parameters and lazy
 * (touched-rows-only) updates for embedding tables — the embedding
 * layer dominates the parameter count, so sparse updates are what make
 * training tractable (§4.2 of the paper discusses the embedding layer
 * as the storage/compute bottleneck).
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "nn/layers.hpp"
#include "nn/matrix.hpp"

namespace voyager::nn {

/** Adam hyperparameters. */
struct AdamConfig
{
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    /** Global gradient-norm clip; <= 0 disables clipping. */
    double clip_norm = 5.0;
};

/** Adam over a fixed set of registered parameters. */
class Adam
{
  public:
    explicit Adam(const AdamConfig &cfg = {});

    /** Register a dense parameter. Must outlive the optimizer. */
    void add_param(Param *p);

    /** Register an embedding for sparse (touched-row) updates. */
    void add_embedding(Embedding *e);

    /**
     * Apply one update; zeroes all gradients and touched sets. When
     * the global gradient norm is non-finite the step is skipped
     * entirely (gradients zeroed, no moment/weight/step-count change)
     * and counted in skipped_steps() / `health.skipped_steps`.
     */
    void step();

    /** Zero gradients without updating. */
    void zero_grad();

    double lr() const { return cfg_.lr; }
    void set_lr(double lr) { cfg_.lr = lr; }
    /** Divide the learning rate (the paper's decay ratio is 2). */
    void decay_lr(double ratio) { cfg_.lr /= ratio; }

    std::uint64_t steps() const { return t_; }

    /** Updates dropped because the gradient norm was NaN/Inf. */
    std::uint64_t skipped_steps() const { return skipped_steps_; }

    /**
     * Serialize the complete optimizer state: step count, the current
     * (possibly decayed) learning rate, and first/second moments of
     * every registered parameter in registration order. Must be
     * called at a step boundary (gradients zero, touched sets empty).
     */
    void save_state(std::ostream &os) const;

    /**
     * Restore optimizer state into the same registration layout.
     * @throws std::runtime_error on count or shape mismatch.
     */
    void load_state(std::istream &is);

  private:
    struct DenseState
    {
        Param *param;
        Matrix m;
        Matrix v;
    };
    struct SparseState
    {
        Embedding *emb;
        Matrix m;
        Matrix v;
    };

    AdamConfig cfg_;
    std::uint64_t t_ = 0;
    std::uint64_t skipped_steps_ = 0;
    std::vector<DenseState> dense_;
    std::vector<SparseState> sparse_;
};

}  // namespace voyager::nn
