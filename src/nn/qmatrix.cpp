#include "nn/qmatrix.hpp"

#include <algorithm>
#include <cmath>

namespace voyager::nn {

namespace {

constexpr std::size_t QNR = 16;  ///< output channels per VNNI tile
constexpr std::size_t QKG = 4;   ///< k values per VNNI dot group

}  // namespace

void
quantize_activations(const Matrix &x, QActivations &out)
{
    const std::size_t m = x.rows();
    const std::size_t k = x.cols();
    out.rows = m;
    out.cols = k;
    out.stride = (k + QKG - 1) / QKG * QKG;
    out.q.assign(m * out.stride, 0);
    out.scales.assign(m, 1.0f);
    out.zero_points.assign(m, 0);

    for (std::size_t r = 0; r < m; ++r) {
        const float *src = x.row(r);
        // Dynamic per-row range, forced to include 0 so the zero
        // point is exactly representable (padding bytes = za would
        // otherwise inject phantom values; padding with qa that
        // dequantizes to 0 is wrong too unless 0 is on the grid — so
        // put it on the grid).
        float lo = 0.0f;
        float hi = 0.0f;
        for (std::size_t j = 0; j < k; ++j) {
            lo = std::min(lo, src[j]);
            hi = std::max(hi, src[j]);
        }
        if (hi == lo)  // all-zero row: scale 1, zp 0, q already 0
            continue;
        const float scale = (hi - lo) / 255.0f;
        const float inv = 1.0f / scale;
        const auto zp = std::clamp<std::int32_t>(
            static_cast<std::int32_t>(std::lround(-lo * inv)), 0, 255);
        out.scales[r] = scale;
        out.zero_points[r] = zp;

        // Hot path (called per inference batch/timestep): branch-free
        // clamp-then-truncate, no libm rounding calls, so the loop
        // auto-vectorizes. After the clamp to [0, 255] the value is
        // non-negative, where +0.5-and-truncate is round-to-nearest.
        const auto zpf = static_cast<float>(zp);
        std::uint8_t *dst = out.q.data() + r * out.stride;
        for (std::size_t j = 0; j < k; ++j) {
            float f = src[j] * inv + zpf;
            f = std::min(std::max(f, 0.0f), 255.0f);
            dst[j] = static_cast<std::uint8_t>(f + 0.5f);
        }
        // Padding bytes stay 0; a 0 weight byte sits opposite them in
        // the packed panels, so they contribute exactly nothing.
    }
}

QMatrix
QMatrix::quantize(const Matrix &w, bool transpose)
{
    QMatrix out;
    out.rows_ = transpose ? w.cols() : w.rows();
    out.cols_ = transpose ? w.rows() : w.cols();
    out.q_.assign(out.rows_ * out.cols_, 0);
    out.scales_.assign(out.rows_, 0.0f);
    out.row_sums_.assign(out.rows_, 0);

    for (std::size_t r = 0; r < out.rows_; ++r) {
        float maxabs = 0.0f;
        for (std::size_t c = 0; c < out.cols_; ++c) {
            const float v = transpose ? w.at(c, r) : w.at(r, c);
            maxabs = std::max(maxabs, std::fabs(v));
        }
        if (maxabs == 0.0f)
            continue;  // scale 0: the row is exactly zero everywhere
        const float scale = maxabs / 127.0f;
        const float inv = 127.0f / maxabs;
        out.scales_[r] = scale;
        std::int8_t *dst = out.q_.data() + r * out.cols_;
        std::int32_t sum = 0;
        for (std::size_t c = 0; c < out.cols_; ++c) {
            const float v = transpose ? w.at(c, r) : w.at(r, c);
            const auto q = std::clamp<std::int32_t>(
                static_cast<std::int32_t>(std::lround(v * inv)), -127,
                127);
            dst[c] = static_cast<std::int8_t>(q);
            sum += q;
        }
        out.row_sums_[r] = sum;
    }
    return out;
}

Matrix
QMatrix::dequantize() const
{
    Matrix out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        const std::int8_t *src = row(r);
        const float s = scales_[r];
        float *dst = out.row(r);
        for (std::size_t c = 0; c < cols_; ++c)
            dst[c] = static_cast<float>(src[c]) * s;
    }
    return out;
}

void
QMatrix::pack() const
{
    if (!packed_.empty() || rows_ == 0 || cols_ == 0)
        return;
    const std::size_t kg = (cols_ + QKG - 1) / QKG;
    const std::size_t tiles = (rows_ + QNR - 1) / QNR;
    packed_.assign(tiles * kg * QNR * QKG, 0);
    for (std::size_t jt = 0; jt < tiles; ++jt) {
        std::int8_t *panel = packed_.data() + jt * kg * QNR * QKG;
        const std::size_t jrem = std::min(QNR, rows_ - jt * QNR);
        for (std::size_t col = 0; col < jrem; ++col) {
            const std::int8_t *src = row(jt * QNR + col);
            for (std::size_t p = 0; p < cols_; ++p) {
                const std::size_t g = p / QKG;
                const std::size_t b = p % QKG;
                panel[(g * QNR + col) * QKG + b] = src[p];
            }
        }
    }
}

}  // namespace voyager::nn
