#include "nn/matrix.hpp"

// Matrix is header-only today; this TU anchors the library target and
// keeps room for out-of-line growth.
