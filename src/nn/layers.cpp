#include "nn/layers.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/ops.hpp"
#include "nn/serialize.hpp"

namespace voyager::nn {

void
glorot_init(Matrix &m, Rng &rng)
{
    const float limit = std::sqrt(
        6.0f / static_cast<float>(m.rows() + m.cols()));
    uniform_init(m, limit, rng);
}

void
uniform_init(Matrix &m, float scale, Rng &rng)
{
    float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        d[i] = (rng.next_float() * 2.0f - 1.0f) * scale;
}

Embedding::Embedding(std::size_t vocab, std::size_t dim, Rng &rng)
    : table_(vocab, dim)
{
    // Embeddings use a smaller init than Glorot: rows are looked up
    // individually, so the fan-in is 1.
    uniform_init(table_.value, 0.05f, rng);
}

void
Embedding::forward(const std::vector<std::int32_t> &ids, Matrix &out) const
{
    const std::size_t dim = table_.value.cols();
    out.resize_uninit(ids.size(), dim);  // every row is memcpy'd below
    for (std::size_t i = 0; i < ids.size(); ++i) {
        assert(ids[i] >= 0 &&
               static_cast<std::size_t>(ids[i]) < table_.value.rows());
        std::memcpy(out.row(i), table_.value.row(ids[i]),
                    dim * sizeof(float));
    }
}

void
Embedding::backward(const std::vector<std::int32_t> &ids,
                    const Matrix &grad_out)
{
    assert(grad_out.rows() == ids.size());
    assert(grad_out.cols() == table_.value.cols());
    const std::size_t dim = table_.value.cols();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        float *g = table_.grad.row(ids[i]);
        const float *go = grad_out.row(i);
        for (std::size_t c = 0; c < dim; ++c)
            g[c] += go[c];
        touched_.insert(ids[i]);
    }
}

void
Embedding::save_state(std::ostream &os) const
{
    save_matrix(os, table_.value);
}

void
Embedding::load_state(std::istream &is)
{
    load_matrix_into(is, table_.value, "embedding table");
}

Linear::Linear(std::size_t in, std::size_t out, Rng &rng)
    : w_(in, out), b_(1, out)
{
    glorot_init(w_.value, rng);
}

void
Linear::forward(const Matrix &x, Matrix &y)
{
    assert(x.cols() == w_.value.rows());
    cached_x_ = x;
    y.resize(x.rows(), w_.value.cols());
    gemm_nn(x, w_.value, y);
    add_bias(y, b_.value);
}

void
Linear::backward(const Matrix &dy, Matrix &dx)
{
    assert(dy.rows() == cached_x_.rows());
    assert(dy.cols() == w_.value.cols());
    gemm_tn(cached_x_, dy, w_.grad);
    bias_backward(dy, b_.grad);
    dx.resize(cached_x_.rows(), cached_x_.cols());
    gemm_nt(dy, w_.value, dx);
}

void
Linear::save_state(std::ostream &os) const
{
    save_matrix(os, w_.value);
    save_matrix(os, b_.value);
}

void
Linear::load_state(std::istream &is)
{
    load_matrix_into(is, w_.value, "linear weight");
    load_matrix_into(is, b_.value, "linear bias");
}

Dropout::Dropout(float keep_prob, std::uint64_t seed)
    : keep_(keep_prob), rng_(seed)
{
    assert(keep_ > 0.0f && keep_ <= 1.0f);
}

void
Dropout::forward(Matrix &x)
{
    if (!training_ || keep_ >= 1.0f) {
        mask_.clear();
        return;
    }
    mask_.resize(x.size());
    const float inv_keep = 1.0f / keep_;
    float *d = x.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
        const float m = rng_.next_float() < keep_ ? inv_keep : 0.0f;
        mask_[i] = m;
        d[i] *= m;
    }
}

void
Dropout::save_state(std::ostream &os) const
{
    write_f32(os, keep_);
    save_rng_state(os, rng_.state());
}

void
Dropout::load_state(std::istream &is)
{
    const float keep = read_f32(is);
    if (keep != keep_)
        throw std::runtime_error("nn: dropout keep-probability "
                                 "mismatch");
    rng_.set_state(load_rng_state(is));
}

void
Dropout::backward(Matrix &dx) const
{
    if (mask_.empty())
        return;
    assert(dx.size() == mask_.size());
    float *d = dx.data();
    for (std::size_t i = 0; i < dx.size(); ++i)
        d[i] *= mask_[i];
}

}  // namespace voyager::nn
