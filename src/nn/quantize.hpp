/**
 * @file
 * Model compression: magnitude pruning and int8 affine quantization
 * (paper §5.4: 80% pruning -> 5-7x, int8 -> 4x, with <1% accuracy
 * loss). Quantization here is quantize-dequantize so the compressed
 * model can be re-evaluated with the ordinary float kernels.
 */
#pragma once

#include <cstdint>

#include "nn/matrix.hpp"

namespace voyager::nn {

/** Zero out the smallest-|w| `sparsity` fraction of entries. */
void magnitude_prune(Matrix &m, double sparsity);

/** Number of nonzero entries. */
std::uint64_t nonzero_count(const Matrix &m);

/**
 * Affine int8 quantize-dequantize (per-tensor scale/zero-point).
 * @return the max absolute quantization error introduced.
 */
float quantize_dequantize_int8(Matrix &m);

/** Storage accounting for a (possibly pruned/quantized) tensor. */
struct TensorStorage
{
    std::uint64_t elements = 0;
    std::uint64_t nonzero = 0;
    std::uint32_t bits_per_weight = 32;

    /** Dense storage at the given precision. */
    std::uint64_t dense_bytes() const
    {
        return elements * bits_per_weight / 8;
    }
    /**
     * Sparse storage: values at `bits_per_weight` plus a 1-bit
     * presence bitmap (CSR-style bitmap encoding).
     */
    std::uint64_t
    sparse_bytes() const
    {
        return nonzero * bits_per_weight / 8 + elements / 8;
    }
};

/** Measure a tensor's storage at a given precision. */
TensorStorage measure_storage(const Matrix &m,
                              std::uint32_t bits_per_weight = 32);

}  // namespace voyager::nn
