/**
 * @file
 * Model compression: magnitude pruning and symmetric per-channel
 * int8 quantization (paper §5.4: 80% pruning -> 5-7x, int8 -> 4x,
 * with <1% accuracy loss). Quantization here is quantize-dequantize
 * so the compressed model can be re-evaluated with the ordinary
 * float kernels; the scheme matches QMatrix (qmatrix.hpp) bit for
 * bit, so the int8 engine built from a compressed model executes the
 * *same* weights the float kernels see.
 */
#pragma once

#include <cstdint>

#include "nn/matrix.hpp"

namespace voyager::nn {

/** Zero out the smallest-|w| `sparsity` fraction of entries. */
void magnitude_prune(Matrix &m, double sparsity);

/** Number of nonzero entries. */
std::uint64_t nonzero_count(const Matrix &m);

/** Which axis carries the per-channel quantization scales. */
enum class QuantAxis
{
    Row,  ///< one scale per row (embedding tables, bias vectors)
    Col,  ///< one scale per column = per output channel (2-D weights)
};

/** Error introduced by one quantize-dequantize pass. */
struct QuantError
{
    float max_err = 0.0f;       ///< max absolute elementwise error
    double sum_sq = 0.0;        ///< sum of squared errors
    std::uint64_t elements = 0; ///< elements covered (incl. zeros)

    /** Root-mean-square error over all covered elements. */
    double rms() const;

    /** Fold another tensor's error into this (for model totals). */
    void merge(const QuantError &o);
};

/**
 * Symmetric per-channel int8 quantize-dequantize: each channel
 * (row or column per `axis`) snaps to the grid scale * [-127, 127]
 * with scale = max|channel| / 127. Matches QMatrix::quantize exactly,
 * so re-quantizing the result is the identity and pruned zeros stay
 * exactly zero. @return max and RMS error introduced.
 */
QuantError quantize_dequantize_int8(Matrix &m,
                                    QuantAxis axis = QuantAxis::Row);

/** Storage accounting for a (possibly pruned/quantized) tensor. */
struct TensorStorage
{
    std::uint64_t elements = 0;
    std::uint64_t nonzero = 0;
    std::uint32_t bits_per_weight = 32;

    /** Dense storage at the given precision (sub-byte tails billed). */
    std::uint64_t dense_bytes() const
    {
        return (elements * bits_per_weight + 7) / 8;
    }
    /**
     * Sparse storage: values at `bits_per_weight` plus a 1-bit
     * presence bitmap (CSR-style bitmap encoding). Both terms round
     * up: a trailing partial byte still occupies a whole byte.
     */
    std::uint64_t
    sparse_bytes() const
    {
        return (nonzero * bits_per_weight + 7) / 8 + (elements + 7) / 8;
    }
};

/** Measure a tensor's storage at a given precision. */
TensorStorage measure_storage(const Matrix &m,
                              std::uint32_t bits_per_weight = 32);

}  // namespace voyager::nn
