#include "nn/hierarchical_softmax.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/layers.hpp"
#include "nn/ops.hpp"

namespace voyager::nn {

namespace {

/** Softmax over a contiguous span; returns log of the normalizer. */
void
softmax_span(float *v, std::size_t n)
{
    float mx = v[0];
    for (std::size_t i = 1; i < n; ++i)
        mx = std::max(mx, v[i]);
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = std::exp(v[i] - mx);
        sum += v[i];
    }
    const float inv = 1.0f / sum;
    for (std::size_t i = 0; i < n; ++i)
        v[i] *= inv;
}

}  // namespace

HierarchicalSoftmax::HierarchicalSoftmax(std::size_t in,
                                         std::size_t classes, Rng &rng,
                                         std::size_t cluster_size)
    : in_(in), classes_(classes),
      cluster_size_(cluster_size != 0
                        ? cluster_size
                        : static_cast<std::size_t>(std::ceil(
                              std::sqrt(static_cast<double>(classes))))),
      num_clusters_((classes + cluster_size_ - 1) / cluster_size_),
      wc_(in, num_clusters_), bc_(1, num_clusters_), wv_(in, classes),
      bv_(1, classes)
{
    assert(classes_ > 0 && in_ > 0);
    glorot_init(wc_.value, rng);
    glorot_init(wv_.value, rng);
}

double
HierarchicalSoftmax::loss_and_grad(
    const Matrix &x, const std::vector<std::int32_t> &targets, Matrix &dx)
{
    const std::size_t batch = x.rows();
    assert(x.cols() == in_ && targets.size() == batch);
    dx.resize(batch, in_);

    double loss = 0.0;
    const float inv_batch = 1.0f / static_cast<float>(batch);
    std::vector<float> cluster_scores(num_clusters_);
    std::vector<float> class_scores(cluster_size_);

    for (std::size_t r = 0; r < batch; ++r) {
        const float *xr = x.row(r);
        float *dxr = dx.row(r);
        const auto target = targets[r];
        assert(target >= 0 &&
               static_cast<std::size_t>(target) < classes_);
        const std::size_t tc = cluster_of(target);
        const std::size_t base = tc * cluster_size_;
        const std::size_t span =
            std::min(cluster_size_, classes_ - base);
        const std::size_t within = static_cast<std::size_t>(target) -
                                   base;

        // Level 1: cluster scores (dense in clusters, O(in*sqrt V)).
        for (std::size_t c = 0; c < num_clusters_; ++c) {
            float acc = bc_.value.at(0, c);
            const float *w = wc_.value.data() + c;  // column c
            for (std::size_t j = 0; j < in_; ++j)
                acc += xr[j] * w[j * num_clusters_];
            cluster_scores[c] = acc;
        }
        softmax_span(cluster_scores.data(), num_clusters_);
        loss -= std::log(std::max(cluster_scores[tc], 1e-12f));

        // Level 2: scores within the target cluster only.
        for (std::size_t c = 0; c < span; ++c) {
            float acc = bv_.value.at(0, base + c);
            const float *w = wv_.value.data() + base + c;
            for (std::size_t j = 0; j < in_; ++j)
                acc += xr[j] * w[j * classes_];
            class_scores[c] = acc;
        }
        softmax_span(class_scores.data(), span);
        loss -= std::log(std::max(class_scores[within], 1e-12f));

        // Backward: softmax-CE gradients at both levels.
        for (std::size_t j = 0; j < in_; ++j)
            dxr[j] = 0.0f;
        for (std::size_t c = 0; c < num_clusters_; ++c) {
            const float g =
                (cluster_scores[c] - (c == tc ? 1.0f : 0.0f)) *
                inv_batch;
            bc_.grad.at(0, c) += g;
            float *wg = wc_.grad.data() + c;
            const float *w = wc_.value.data() + c;
            for (std::size_t j = 0; j < in_; ++j) {
                wg[j * num_clusters_] += g * xr[j];
                dxr[j] += g * w[j * num_clusters_];
            }
        }
        for (std::size_t c = 0; c < span; ++c) {
            const float g =
                (class_scores[c] - (c == within ? 1.0f : 0.0f)) *
                inv_batch;
            bv_.grad.at(0, base + c) += g;
            float *wg = wv_.grad.data() + base + c;
            const float *w = wv_.value.data() + base + c;
            for (std::size_t j = 0; j < in_; ++j) {
                wg[j * classes_] += g * xr[j];
                dxr[j] += g * w[j * classes_];
            }
        }
    }
    return loss / static_cast<double>(batch);
}

std::vector<std::pair<std::int32_t, float>>
HierarchicalSoftmax::predict_topk(const float *x, std::size_t k,
                                  std::size_t beam) const
{
    // Level 1: full cluster distribution.
    std::vector<float> cluster_scores(num_clusters_);
    for (std::size_t c = 0; c < num_clusters_; ++c) {
        float acc = bc_.value.at(0, c);
        const float *w = wc_.value.data() + c;
        for (std::size_t j = 0; j < in_; ++j)
            acc += x[j] * w[j * num_clusters_];
        cluster_scores[c] = acc;
    }
    softmax_span(cluster_scores.data(), num_clusters_);

    std::vector<std::size_t> order(num_clusters_);
    for (std::size_t c = 0; c < num_clusters_; ++c)
        order[c] = c;
    const std::size_t b = std::min(beam, num_clusters_);
    std::partial_sort(order.begin(), order.begin() + b, order.end(),
                      [&](std::size_t a, std::size_t c) {
                          return cluster_scores[a] > cluster_scores[c];
                      });

    // Level 2 inside the beam clusters only.
    std::vector<std::pair<std::int32_t, float>> out;
    std::vector<float> class_scores(cluster_size_);
    for (std::size_t bi = 0; bi < b; ++bi) {
        const std::size_t c = order[bi];
        const std::size_t base = c * cluster_size_;
        const std::size_t span =
            std::min(cluster_size_, classes_ - base);
        for (std::size_t i = 0; i < span; ++i) {
            float acc = bv_.value.at(0, base + i);
            const float *w = wv_.value.data() + base + i;
            for (std::size_t j = 0; j < in_; ++j)
                acc += x[j] * w[j * classes_];
            class_scores[i] = acc;
        }
        softmax_span(class_scores.data(), span);
        for (std::size_t i = 0; i < span; ++i) {
            out.emplace_back(static_cast<std::int32_t>(base + i),
                             cluster_scores[c] * class_scores[i]);
        }
    }
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &c) {
        return a.second > c.second;
    });
    if (out.size() > k)
        out.resize(k);
    return out;
}

}  // namespace voyager::nn
