/**
 * @file
 * Two-level (hierarchical) softmax output head — the paper's §5.5
 * "paths to practicality" estimates a 3-4x training/inference
 * reduction from replacing the flat softmax over the page vocabulary
 * with a hierarchical one. Classes are partitioned into ~sqrt(V)
 * contiguous clusters; training computes one softmax over clusters
 * plus one softmax inside the target's cluster (O(sqrt(V)) instead of
 * O(V) per sample), and inference searches only the top clusters.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.hpp"
#include "util/random.hpp"

namespace voyager::nn {

/** Hierarchical softmax over `classes` outputs from `in`-dim inputs. */
class HierarchicalSoftmax
{
  public:
    /**
     * @param in input feature width
     * @param classes output vocabulary size
     * @param cluster_size classes per cluster; 0 = ceil(sqrt(classes))
     */
    HierarchicalSoftmax(std::size_t in, std::size_t classes, Rng &rng,
                        std::size_t cluster_size = 0);

    /**
     * Training step pieces: compute the mean two-level CE loss for
     * `targets` and the input gradient. Only the cluster head and the
     * target clusters' class rows participate (the whole point).
     *
     * @param x (batch, in) input features
     * @param targets one class per row
     * @param dx receives d(loss)/dx (overwritten, same shape as x)
     * @return mean loss
     */
    double loss_and_grad(const Matrix &x,
                         const std::vector<std::int32_t> &targets,
                         Matrix &dx);

    /**
     * Approximate top-k classes for one input row: evaluates the
     * `beam` most probable clusters only (exact when beam equals the
     * cluster count).
     * @return (class, probability) pairs, descending.
     */
    std::vector<std::pair<std::int32_t, float>>
    predict_topk(const float *x, std::size_t k,
                 std::size_t beam = 2) const;

    std::size_t classes() const { return classes_; }
    std::size_t clusters() const { return num_clusters_; }
    std::size_t cluster_size() const { return cluster_size_; }

    Param &cluster_weight() { return wc_; }
    Param &class_weight() { return wv_; }

    /** Multiply-accumulate count of one training sample, for the §5.5
     *  cost comparison against a flat softmax (in * classes). */
    std::size_t train_macs_per_sample() const
    {
        return in_ * (num_clusters_ + cluster_size_);
    }

  private:
    std::size_t cluster_of(std::int32_t cls) const
    {
        return static_cast<std::size_t>(cls) / cluster_size_;
    }

    std::size_t in_;
    std::size_t classes_;
    std::size_t cluster_size_;
    std::size_t num_clusters_;
    Param wc_;  ///< (in, clusters) cluster scores
    Param bc_;  ///< (1, clusters)
    Param wv_;  ///< (in, classes) within-cluster scores
    Param bv_;  ///< (1, classes)
};

}  // namespace voyager::nn
