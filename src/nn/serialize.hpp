/**
 * @file
 * Binary serialization for matrices and parameter sets, used to
 * checkpoint trained models and to measure on-disk model size.
 */
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/matrix.hpp"

namespace voyager::nn {

/** Write a matrix (shape + row-major floats). */
void save_matrix(std::ostream &os, const Matrix &m);

/** Read a matrix written by save_matrix. @throws on short read. */
Matrix load_matrix(std::istream &is);

/** Write an ordered parameter list (values only, not gradients). */
void save_params(std::ostream &os, const std::vector<const Matrix *> &ps);

/**
 * Load into an ordered parameter list; shapes must match.
 * @throws std::runtime_error on shape mismatch.
 */
void load_params(std::istream &is, const std::vector<Matrix *> &ps);

}  // namespace voyager::nn
