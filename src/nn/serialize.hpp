/**
 * @file
 * Binary serialization for matrices and parameter sets, used to
 * checkpoint trained models and to measure on-disk model size, plus
 * the little-endian-host POD stream helpers every module's
 * save_state/load_state implementation shares. All load helpers throw
 * std::runtime_error on a short read, so truncated streams surface as
 * exceptions rather than silent garbage.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "nn/matrix.hpp"
#include "util/random.hpp"

namespace voyager::nn {

/** Write a matrix (shape + row-major floats). */
void save_matrix(std::ostream &os, const Matrix &m);

/** Read a matrix written by save_matrix. @throws on short read. */
Matrix load_matrix(std::istream &is);

/** Write an ordered parameter list (values only, not gradients). */
void save_params(std::ostream &os, const std::vector<const Matrix *> &ps);

/**
 * Load into an ordered parameter list; shapes must match.
 * @throws std::runtime_error on shape mismatch.
 */
void load_params(std::istream &is, const std::vector<Matrix *> &ps);

/** Load a matrix into `dst`; its current shape must match.
 *  @throws std::runtime_error on mismatch. */
void load_matrix_into(std::istream &is, Matrix &dst, const char *what);

// --- POD stream helpers -------------------------------------------------

void write_u64(std::ostream &os, std::uint64_t v);
std::uint64_t read_u64(std::istream &is);

void write_f64(std::ostream &os, double v);
double read_f64(std::istream &is);

void write_f32(std::ostream &os, float v);
float read_f32(std::istream &is);

/**
 * Read a u64 and check it equals `expected`; `what` names the field
 * in the error message. @throws std::runtime_error on mismatch.
 */
void expect_u64(std::istream &is, std::uint64_t expected,
                const char *what);

/** Write/read a full Rng snapshot (xoshiro words + gaussian spare). */
void save_rng_state(std::ostream &os, const RngState &s);
RngState load_rng_state(std::istream &is);

}  // namespace voyager::nn
