#include "nn/qlayers.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "nn/ops.hpp"
#include "nn/qops.hpp"

namespace voyager::nn {

namespace {

/**
 * Error-feedback residual: r = x - dequant(qx), the part of `x` the
 * u8 grid could not represent. Re-quantizing `r` on its own per-row
 * grid (whose scale is ~1/255 of the original row's) and running a
 * second qgemm into the same accumulator recovers ~16 effective bits
 * of activation precision from two int8 passes.
 */
void
quant_residual(const Matrix &x, const QActivations &qx, Matrix &r)
{
    r.resize_uninit(x.rows(), x.cols());
    for (std::size_t i = 0; i < x.rows(); ++i) {
        const float s = qx.scale(i);
        const auto zp = static_cast<float>(qx.zero_point(i));
        const std::uint8_t *q = qx.row(i);
        const float *src = x.row(i);
        float *dst = r.row(i);
        for (std::size_t j = 0; j < x.cols(); ++j)
            dst[j] =
                src[j] - (static_cast<float>(q[j]) - zp) * s;
    }
}

}  // namespace

QuantizedEmbedding::QuantizedEmbedding(const Embedding &src)
    : table_(QMatrix::quantize(src.param().value, /*transpose=*/false))
{
}

void
QuantizedEmbedding::forward(const std::vector<std::int32_t> &ids,
                            Matrix &out) const
{
    const std::size_t d = dim();
    out.resize_uninit(ids.size(), d);
    for (std::size_t b = 0; b < ids.size(); ++b) {
        assert(ids[b] >= 0 &&
               static_cast<std::size_t>(ids[b]) < vocab());
        const auto r = static_cast<std::size_t>(ids[b]);
        const std::int8_t *src = table_.row(r);
        const float s = table_.scale(r);
        float *dst = out.row(b);
        for (std::size_t j = 0; j < d; ++j)
            dst[j] = static_cast<float>(src[j]) * s;
    }
}

QuantizedLinear::QuantizedLinear(const Linear &src)
    : wq_(QMatrix::quantize(src.weight().value, /*transpose=*/true)),
      bias_(src.bias().value)
{
    wq_.pack();
}

void
QuantizedLinear::forward(const Matrix &x, Matrix &y)
{
    assert(x.cols() == in_dim());
    quantize_activations(x, qx_);
    y.resize(x.rows(), out_dim());  // zero-fills: qgemm accumulates
    qgemm_nt(qx_, wq_, y);
    add_bias(y, bias_);
}

QuantizedLstm::QuantizedLstm(const Lstm &src)
    : wxq_(QMatrix::quantize(src.wx().value, /*transpose=*/true)),
      whq_(QMatrix::quantize(src.wh().value, /*transpose=*/true)),
      bias_(src.bias().value)
{
    wxq_.pack();
    whq_.pack();
}

void
QuantizedLstm::forward(const std::vector<Matrix> &xs, Matrix &h_last)
{
    assert(!xs.empty());
    const std::size_t batch = xs[0].rows();
    const std::size_t h = hidden();
    const std::size_t T = xs.size();

    h_prev_.resize(batch, h);
    c_prev_.resize(batch, h);
    const float *bias = bias_.data();
    for (std::size_t t = 0; t < T; ++t) {
        assert(xs[t].rows() == batch && xs[t].cols() == in_dim());
        z_.resize(batch, 4 * h);  // zero-fills: the qgemms accumulate
        // The x * Wx GEMM runs twice int8: the quantized input, then
        // its error-feedback residual on a ~255x finer grid. The
        // LSTM's x rows concatenate embeddings with heterogeneous
        // magnitudes, so one u8 grid per row is too coarse on its
        // own — the residual pass keeps top-1 predictions aligned
        // with fp32 while staying on the int8 kernels. h rows are
        // homogeneous bounded tanh outputs; a single pass suffices
        // there (verified by the agreement test, which is
        // insensitive to Wh quantization error).
        quantize_activations(xs[t], qx_);
        qgemm_nt(qx_, wxq_, z_);
        quant_residual(xs[t], qx_, r_);
        quantize_activations(r_, qr_);
        qgemm_nt(qr_, wxq_, z_);
        if (t > 0) {  // h_{-1} = 0 contributes nothing at t = 0
            quantize_activations(h_prev_, qh_);
            qgemm_nt(qh_, whq_, z_);
        }

        c_cur_.resize_uninit(batch, h);
        // fp32 tail: identical fused gate pass to Lstm::forward.
        ScopedOpTimer timer(op_stats().lstm_gate, batch * h);
        for (std::size_t r = 0; r < batch; ++r) {
            float *zr = z_.row(r);
            const float *cp = t > 0 ? c_prev_.row(r) : nullptr;
            float *cr = c_cur_.row(r);
            float *hr = h_prev_.row(r);  // overwritten to h_t
            for (std::size_t j = 0; j < h; ++j) {
                float &gi = zr[j];
                float &gf = zr[h + j];
                float &gg = zr[2 * h + j];
                float &go = zr[3 * h + j];
                gi = 1.0f / (1.0f + std::exp(-(gi + bias[j])));
                gf = 1.0f / (1.0f + std::exp(-(gf + bias[h + j])));
                gg = std::tanh(gg + bias[2 * h + j]);
                go = 1.0f / (1.0f + std::exp(-(go + bias[3 * h + j])));
                cr[j] = gi * gg + (cp ? gf * cp[j] : 0.0f);
                hr[j] = go * std::tanh(cr[j]);
            }
        }
        std::swap(c_prev_, c_cur_);
    }
    h_last = h_prev_;
}

}  // namespace voyager::nn
