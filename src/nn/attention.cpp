#include "nn/attention.hpp"

#include <cassert>
#include <stdexcept>

#include "nn/ops.hpp"
#include "nn/serialize.hpp"

namespace voyager::nn {

MoeAttention::MoeAttention(std::size_t experts, float scale)
    : experts_(experts), scale_(scale)
{
    assert(experts_ > 0);
}

void
MoeAttention::forward(const Matrix &page_emb, const Matrix &offset_emb,
                      Matrix &out)
{
    const std::size_t batch = page_emb.rows();
    const std::size_t d = page_emb.cols();
    assert(offset_emb.rows() == batch);
    assert(offset_emb.cols() == experts_ * d);

    ScopedOpTimer timer(op_stats().attention,
                        4ull * batch * experts_ * d);
    page_ = page_emb;
    offset_ = offset_emb;
    attn_.resize_uninit(batch, experts_);  // scores assigned below

    // Scores: a(o, s) = softmax_s(f * <h_p, h_{o,s}>)  (Eq. 9).
    for (std::size_t r = 0; r < batch; ++r) {
        const float *p = page_emb.row(r);
        const float *o = offset_emb.row(r);
        float *a = attn_.row(r);
        for (std::size_t s = 0; s < experts_; ++s) {
            float dot = 0.0f;
            const float *chunk = o + s * d;
            for (std::size_t j = 0; j < d; ++j)
                dot += p[j] * chunk[j];
            a[s] = scale_ * dot;
        }
    }
    softmax_rows(attn_);

    // Output: h'_o = sum_s a(o, s) h_{o,s}  (Eq. 10).
    out.resize(batch, d);
    for (std::size_t r = 0; r < batch; ++r) {
        const float *o = offset_emb.row(r);
        const float *a = attn_.row(r);
        float *y = out.row(r);
        for (std::size_t s = 0; s < experts_; ++s) {
            const float w = a[s];
            const float *chunk = o + s * d;
            for (std::size_t j = 0; j < d; ++j)
                y[j] += w * chunk[j];
        }
    }
}

void
MoeAttention::backward(const Matrix &dout, Matrix &dpage, Matrix &doffset)
{
    const std::size_t batch = page_.rows();
    const std::size_t d = page_.cols();
    assert(dout.rows() == batch && dout.cols() == d);

    ScopedOpTimer timer(op_stats().attention,
                        8ull * batch * experts_ * d);
    dpage.resize_uninit(batch, d);           // fully assigned below
    doffset.resize_uninit(batch, experts_ * d);

    std::vector<float> da(experts_);
    std::vector<float> dscore(experts_);
    for (std::size_t r = 0; r < batch; ++r) {
        const float *p = page_.row(r);
        const float *o = offset_.row(r);
        const float *a = attn_.row(r);
        const float *dy = dout.row(r);
        float *dp = dpage.row(r);
        float *doff = doffset.row(r);

        // d a_s = <dout, chunk_s>; value path: d chunk_s += a_s * dout.
        for (std::size_t s = 0; s < experts_; ++s) {
            const float *chunk = o + s * d;
            float *dchunk = doff + s * d;
            float acc = 0.0f;
            for (std::size_t j = 0; j < d; ++j) {
                acc += dy[j] * chunk[j];
                dchunk[j] = a[s] * dy[j];
            }
            da[s] = acc;
        }
        // Softmax backward: ds_s = a_s (da_s - sum_k a_k da_k).
        float dot = 0.0f;
        for (std::size_t s = 0; s < experts_; ++s)
            dot += a[s] * da[s];
        for (std::size_t s = 0; s < experts_; ++s)
            dscore[s] = a[s] * (da[s] - dot);
        // Score backward through f * <p, chunk_s>.
        for (std::size_t j = 0; j < d; ++j)
            dp[j] = 0.0f;
        for (std::size_t s = 0; s < experts_; ++s) {
            const float g = scale_ * dscore[s];
            const float *chunk = o + s * d;
            float *dchunk = doff + s * d;
            for (std::size_t j = 0; j < d; ++j) {
                dp[j] += g * chunk[j];
                dchunk[j] += g * p[j];
            }
        }
    }
}

void
MoeAttention::save_state(std::ostream &os) const
{
    write_u64(os, experts_);
    write_f32(os, scale_);
}

void
MoeAttention::load_state(std::istream &is)
{
    expect_u64(is, experts_, "attention experts");
    const float scale = read_f32(is);
    if (scale != scale_)
        throw std::runtime_error("nn: attention scale mismatch");
}

}  // namespace voyager::nn
