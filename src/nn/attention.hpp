/**
 * @file
 * The paper's page-aware offset embedding mechanism (§4.2.2): a
 * mixture-of-experts dot-product attention. The offset embedding
 * (batch, n*d) is read as n expert chunks of size d; the page
 * embedding (batch, d) is the query; each expert chunk serves as both
 * key and value. Output = attention-weighted sum of the chunks
 * (Eq. 9 and 10).
 */
#pragma once

#include <iosfwd>

#include "nn/matrix.hpp"

namespace voyager::nn {

/** Soft dot-product mixture-of-experts attention (no linear maps). */
class MoeAttention
{
  public:
    /**
     * @param experts number of expert chunks n
     * @param scale   the paper's scaling factor f in (0, 1]
     */
    explicit MoeAttention(std::size_t experts, float scale = 1.0f);

    /**
     * @param page_emb   query (batch, d)
     * @param offset_emb expert chunks (batch, n*d)
     * @param out        page-aware offset embedding (batch, d)
     */
    void forward(const Matrix &page_emb, const Matrix &offset_emb,
                 Matrix &out);

    /**
     * Backprop: splits d(out) into gradients for the page embedding
     * and the raw offset embedding (both overwritten).
     */
    void backward(const Matrix &dout, Matrix &dpage, Matrix &doffset);

    /** Attention weights of the last forward (batch, n). */
    const Matrix &weights() const { return attn_; }
    std::size_t experts() const { return experts_; }

    /**
     * The attention has no trainable parameters; save_state/load_state
     * keep the uniform module interface by writing the configuration
     * (experts, scale) as a consistency check only.
     */
    void save_state(std::ostream &os) const;
    /** @throws std::runtime_error on configuration mismatch. */
    void load_state(std::istream &is);

  private:
    std::size_t experts_;
    float scale_;
    Matrix page_;    // cached query
    Matrix offset_;  // cached expert chunks
    Matrix attn_;    // cached softmax weights
};

}  // namespace voyager::nn
