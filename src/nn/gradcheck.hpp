/**
 * @file
 * Central-difference gradient checking used by the test suite to
 * verify every hand-written backward pass.
 */
#pragma once

#include <functional>
#include <vector>

#include "nn/matrix.hpp"

namespace voyager::nn {

/**
 * Compare the analytic gradient stored in `param.grad` against a
 * numeric central difference of `loss_fn` for the given flat indices.
 *
 * `loss_fn` must recompute the full forward pass and return the loss;
 * it must NOT mutate gradients. The caller is responsible for having
 * run forward+backward once so `param.grad` is populated.
 *
 * @return the maximum relative error over the checked entries, where
 *         relative error = |a - n| / max(1e-4, |a| + |n|).
 */
double gradient_check(Param &param,
                      const std::function<double()> &loss_fn,
                      const std::vector<std::size_t> &indices,
                      float eps = 1e-2f);

/** Evenly spaced sample of k indices over a parameter of size n. */
std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

}  // namespace voyager::nn
