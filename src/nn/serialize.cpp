#include "nn/serialize.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace voyager::nn {

namespace {

constexpr std::uint32_t kMagic = 0x564f594d;  // "VOYM"

template <typename T>
void
write_pod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
T
read_pod(std::istream &is, const char *what)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        throw std::runtime_error(std::string("nn: truncated stream "
                                             "reading ") +
                                 what);
    return v;
}

}  // namespace

void
save_matrix(std::ostream &os, const Matrix &m)
{
    const std::uint64_t r = m.rows();
    const std::uint64_t c = m.cols();
    os.write(reinterpret_cast<const char *>(&kMagic), sizeof(kMagic));
    os.write(reinterpret_cast<const char *>(&r), sizeof(r));
    os.write(reinterpret_cast<const char *>(&c), sizeof(c));
    os.write(reinterpret_cast<const char *>(m.data()),
             static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix
load_matrix(std::istream &is)
{
    std::uint32_t magic = 0;
    std::uint64_t r = 0;
    std::uint64_t c = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    if (!is || magic != kMagic)
        throw std::runtime_error("nn: bad matrix magic");
    is.read(reinterpret_cast<char *>(&r), sizeof(r));
    is.read(reinterpret_cast<char *>(&c), sizeof(c));
    if (!is)
        throw std::runtime_error("nn: truncated matrix header");
    // Guard r*c overflow / absurd allocations from corrupt headers.
    if (r > (std::uint64_t{1} << 32) || c > (std::uint64_t{1} << 32))
        throw std::runtime_error("nn: implausible matrix shape");
    Matrix m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
    is.read(reinterpret_cast<char *>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
    if (!is)
        throw std::runtime_error("nn: truncated matrix");
    return m;
}

void
save_params(std::ostream &os, const std::vector<const Matrix *> &ps)
{
    const std::uint64_t n = ps.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    for (const Matrix *p : ps)
        save_matrix(os, *p);
}

void
load_params(std::istream &is, const std::vector<Matrix *> &ps)
{
    std::uint64_t n = 0;
    is.read(reinterpret_cast<char *>(&n), sizeof(n));
    if (!is || n != ps.size())
        throw std::runtime_error("nn: parameter count mismatch");
    for (Matrix *p : ps)
        load_matrix_into(is, *p, "parameter");
}

void
load_matrix_into(std::istream &is, Matrix &dst, const char *what)
{
    Matrix loaded = load_matrix(is);
    if (loaded.rows() != dst.rows() || loaded.cols() != dst.cols())
        throw std::runtime_error(std::string("nn: ") + what +
                                 " shape mismatch");
    dst = std::move(loaded);
}

void
write_u64(std::ostream &os, std::uint64_t v)
{
    write_pod(os, v);
}

std::uint64_t
read_u64(std::istream &is)
{
    return read_pod<std::uint64_t>(is, "u64");
}

void
write_f64(std::ostream &os, double v)
{
    write_pod(os, v);
}

double
read_f64(std::istream &is)
{
    return read_pod<double>(is, "f64");
}

void
write_f32(std::ostream &os, float v)
{
    write_pod(os, v);
}

float
read_f32(std::istream &is)
{
    return read_pod<float>(is, "f32");
}

void
expect_u64(std::istream &is, std::uint64_t expected, const char *what)
{
    const std::uint64_t got = read_u64(is);
    if (got != expected)
        throw std::runtime_error(
            std::string("nn: state mismatch on ") + what + ": stored " +
            std::to_string(got) + ", expected " +
            std::to_string(expected));
}

void
save_rng_state(std::ostream &os, const RngState &s)
{
    for (const std::uint64_t w : s.words)
        write_u64(os, w);
    write_u64(os, s.have_gaussian ? 1 : 0);
    write_f64(os, s.spare_gaussian);
}

RngState
load_rng_state(std::istream &is)
{
    RngState s;
    for (std::uint64_t &w : s.words)
        w = read_u64(is);
    s.have_gaussian = read_u64(is) != 0;
    s.spare_gaussian = read_f64(is);
    return s;
}

}  // namespace voyager::nn
