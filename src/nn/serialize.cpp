#include "nn/serialize.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace voyager::nn {

namespace {
constexpr std::uint32_t kMagic = 0x564f594d;  // "VOYM"
}

void
save_matrix(std::ostream &os, const Matrix &m)
{
    const std::uint64_t r = m.rows();
    const std::uint64_t c = m.cols();
    os.write(reinterpret_cast<const char *>(&kMagic), sizeof(kMagic));
    os.write(reinterpret_cast<const char *>(&r), sizeof(r));
    os.write(reinterpret_cast<const char *>(&c), sizeof(c));
    os.write(reinterpret_cast<const char *>(m.data()),
             static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix
load_matrix(std::istream &is)
{
    std::uint32_t magic = 0;
    std::uint64_t r = 0;
    std::uint64_t c = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    if (!is || magic != kMagic)
        throw std::runtime_error("nn: bad matrix magic");
    is.read(reinterpret_cast<char *>(&r), sizeof(r));
    is.read(reinterpret_cast<char *>(&c), sizeof(c));
    Matrix m(r, c);
    is.read(reinterpret_cast<char *>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
    if (!is)
        throw std::runtime_error("nn: truncated matrix");
    return m;
}

void
save_params(std::ostream &os, const std::vector<const Matrix *> &ps)
{
    const std::uint64_t n = ps.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    for (const Matrix *p : ps)
        save_matrix(os, *p);
}

void
load_params(std::istream &is, const std::vector<Matrix *> &ps)
{
    std::uint64_t n = 0;
    is.read(reinterpret_cast<char *>(&n), sizeof(n));
    if (!is || n != ps.size())
        throw std::runtime_error("nn: parameter count mismatch");
    for (Matrix *p : ps) {
        Matrix loaded = load_matrix(is);
        if (loaded.rows() != p->rows() || loaded.cols() != p->cols())
            throw std::runtime_error("nn: parameter shape mismatch");
        *p = std::move(loaded);
    }
}

}  // namespace voyager::nn
