/**
 * @file
 * Inference-only quantized layers (DESIGN.md §5.13). Each is built
 * from its trained fp32 counterpart and exposes the same forward
 * shape contract. The matrix multiplies run int8 (qgemm_nt on
 * per-channel QMatrix weights and dynamically quantized u8
 * activations); the small elementwise tails — bias adds, LSTM gate
 * nonlinearities — stay fp32, where they are cheap and precision
 * actually matters.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layers.hpp"
#include "nn/lstm.hpp"
#include "nn/qmatrix.hpp"

namespace voyager::nn {

/** Int8 embedding table: gather rows, dequantize per-row scale. */
class QuantizedEmbedding
{
  public:
    explicit QuantizedEmbedding(const Embedding &src);

    /** Gather + dequantize rows: out(batch, dim). */
    void forward(const std::vector<std::int32_t> &ids,
                 Matrix &out) const;

    std::size_t vocab() const { return table_.rows(); }
    std::size_t dim() const { return table_.cols(); }
    const QMatrix &table() const { return table_; }

    /** int8 payload bytes (values + scales). */
    std::uint64_t int8_bytes() const { return table_.bytes(); }

  private:
    QMatrix table_;
};

/** Int8 fully connected layer: qgemm + fp32 bias. */
class QuantizedLinear
{
  public:
    explicit QuantizedLinear(const Linear &src);

    /** Y(batch,out) = dequant(qgemm(quant(X), Wq)) + b. */
    void forward(const Matrix &x, Matrix &y);

    std::size_t in_dim() const { return wq_.cols(); }
    std::size_t out_dim() const { return wq_.rows(); }
    const QMatrix &weight() const { return wq_; }

    /** int8 payload bytes plus the fp32 bias. */
    std::uint64_t int8_bytes() const
    {
        return wq_.bytes() + bias_.size() * sizeof(float);
    }

  private:
    QMatrix wq_;   ///< (out, in), per-output-channel scales
    Matrix bias_;  ///< (1, out) fp32
    QActivations qx_;
};

/**
 * Int8 LSTM: both gate GEMMs (x * Wx and h * Wh) run int8 with the
 * inputs re-quantized dynamically each step. The x * Wx GEMM adds an
 * error-feedback residual pass — the fp32 leftover of the first
 * quantization is itself quantized on a ~255x finer per-row grid and
 * accumulated by a second qgemm, giving ~16 effective activation
 * bits from pure int8 kernels on the concatenated (heterogeneous)
 * input rows. The fused gate pass (bias + sigmoid/tanh + cell
 * update) is the fp32 tail and charges the same `nn.lstm_gate` op
 * class as the trainable LSTM.
 */
class QuantizedLstm
{
  public:
    explicit QuantizedLstm(const Lstm &src);

    /** Run the sequence from zero state; h_last = h_T (batch, H). */
    void forward(const std::vector<Matrix> &xs, Matrix &h_last);

    std::size_t in_dim() const { return wxq_.cols(); }
    std::size_t hidden() const { return whq_.cols(); }
    const QMatrix &wx() const { return wxq_; }
    const QMatrix &wh() const { return whq_; }

    /** int8 payload bytes plus the fp32 bias. */
    std::uint64_t int8_bytes() const
    {
        return wxq_.bytes() + whq_.bytes() +
               bias_.size() * sizeof(float);
    }

  private:
    QMatrix wxq_;  ///< (4H, in)
    QMatrix whq_;  ///< (4H, H)
    Matrix bias_;  ///< (1, 4H) fp32
    QActivations qx_;
    QActivations qh_;
    QActivations qr_;  ///< quantized error-feedback residual
    Matrix r_;       ///< fp32 residual of the last quantization
    Matrix z_;       ///< (B, 4H) gate pre-activations
    Matrix h_prev_;  ///< (B, H)
    Matrix c_prev_;  ///< (B, H)
    Matrix c_cur_;   ///< (B, H)
};

}  // namespace voyager::nn
