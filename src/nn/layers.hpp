/**
 * @file
 * Basic trainable layers: Embedding (with sparse gradient bookkeeping),
 * Linear, and inverted Dropout. Each layer caches what its backward
 * pass needs; backward accumulates into parameter gradients and
 * returns/accepts input gradients explicitly.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <unordered_set>
#include <vector>

#include "nn/matrix.hpp"
#include "util/random.hpp"

namespace voyager::nn {

/** Uniform Glorot/Xavier init in [-limit, limit]. */
void glorot_init(Matrix &m, Rng &rng);

/** Uniform init in [-scale, scale]. */
void uniform_init(Matrix &m, float scale, Rng &rng);

/**
 * Token embedding table (vocab x dim).
 *
 * Gradients are accumulated only in touched rows and the touched set
 * is tracked, so the optimizer can do sparse Adam updates — essential
 * when the page vocabulary has tens of thousands of entries.
 */
class Embedding
{
  public:
    Embedding(std::size_t vocab, std::size_t dim, Rng &rng);

    /** Gather rows: out(batch, dim). ids must be < vocab. */
    void forward(const std::vector<std::int32_t> &ids, Matrix &out) const;

    /** Scatter-add grad_out rows into the table gradient. */
    void backward(const std::vector<std::int32_t> &ids,
                  const Matrix &grad_out);

    Param &param() { return table_; }
    const Param &param() const { return table_; }
    std::size_t vocab() const { return table_.value.rows(); }
    std::size_t dim() const { return table_.value.cols(); }

    /** Rows with nonzero gradient since the last clear. */
    const std::unordered_set<std::int32_t> &touched() const
    {
        return touched_;
    }
    void clear_touched() { touched_.clear(); }

    /**
     * Serialize the table weights. Gradients and the touched set are
     * optimizer-step-transient and are not part of the state — all
     * module save_state/load_state calls happen at step boundaries
     * where both are empty.
     */
    void save_state(std::ostream &os) const;
    /** Restore weights. @throws std::runtime_error on shape mismatch. */
    void load_state(std::istream &is);

  private:
    Param table_;
    std::unordered_set<std::int32_t> touched_;
};

/** Fully connected layer Y = X W + b. */
class Linear
{
  public:
    Linear(std::size_t in, std::size_t out, Rng &rng);

    /** Y(batch,out) = X(batch,in) W + b. Caches X for backward. */
    void forward(const Matrix &x, Matrix &y);

    /**
     * Accumulate dW, db from dy and the cached input; dx (same shape
     * as the cached input) receives the input gradient (overwritten).
     */
    void backward(const Matrix &dy, Matrix &dx);

    Param &weight() { return w_; }
    Param &bias() { return b_; }
    const Param &weight() const { return w_; }
    const Param &bias() const { return b_; }
    std::size_t in_dim() const { return w_.value.rows(); }
    std::size_t out_dim() const { return w_.value.cols(); }

    /** Serialize weight and bias. */
    void save_state(std::ostream &os) const;
    /** Restore weight and bias. @throws on shape mismatch. */
    void load_state(std::istream &is);

  private:
    Param w_;  // (in, out)
    Param b_;  // (1, out)
    Matrix cached_x_;
};

/**
 * Inverted dropout: at train time zeroes activations with probability
 * (1 - keep) and scales survivors by 1/keep; identity at eval time.
 */
class Dropout
{
  public:
    Dropout(float keep_prob, std::uint64_t seed);

    void set_training(bool training) { training_ = training; }
    bool training() const { return training_; }

    /** Apply in place; records the mask when training. */
    void forward(Matrix &x);

    /** Apply the recorded mask to the gradient in place. */
    void backward(Matrix &dx) const;

    /**
     * Serialize keep probability and the RNG stream position — the
     * stream position is what makes a resumed run draw the same masks
     * as an uninterrupted one. The per-batch mask is transient.
     */
    void save_state(std::ostream &os) const;
    /** Restore; @throws std::runtime_error on keep-prob mismatch. */
    void load_state(std::istream &is);

  private:
    float keep_;
    bool training_ = true;
    Rng rng_;
    std::vector<float> mask_;
};

}  // namespace voyager::nn
