/**
 * @file
 * Loss functions: single-label softmax cross-entropy and the paper's
 * multi-label binary cross-entropy (§4.4). Both return the mean loss
 * and write the logit gradient (already divided by the batch size).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.hpp"

namespace voyager::nn {

/**
 * Mean softmax cross-entropy with one label per row.
 * @param logits (batch, classes)
 * @param labels batch labels in [0, classes)
 * @param dlogits receives (softmax - onehot) / batch
 */
double softmax_ce_loss(const Matrix &logits,
                       const std::vector<std::int32_t> &labels,
                       Matrix &dlogits);

/**
 * Mean multi-label BCE-with-logits: every class listed in labels[r]
 * is a positive for row r, everything else a negative (paper §4.4).
 * The per-row loss is summed over classes, then averaged over rows.
 * @param dlogits receives (sigmoid - y) / batch, with positive terms
 *        scaled by pos_weight
 * @param pos_weight weight on positive-class terms; >1 counteracts the
 *        1-positive-vs-many-negatives imbalance of large vocabularies
 */
double bce_multilabel_loss(const Matrix &logits,
                           const std::vector<std::vector<std::int32_t>> &
                               labels,
                           Matrix &dlogits, float pos_weight = 1.0f);

/** Row-wise argmax of a logits/probability matrix. */
std::vector<std::int32_t> argmax_rows(const Matrix &m);

/** Indices of the top-k entries of one row, descending. */
std::vector<std::int32_t> topk_row(const Matrix &m, std::size_t row,
                                   std::size_t k);

}  // namespace voyager::nn
