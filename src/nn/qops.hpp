/**
 * @file
 * Int8 GEMM: u8 activations x s8 weights -> int32 accumulate -> fp32
 * requantize. Mirrors the fp32 kernel family in ops.hpp: `qgemm_nt`
 * is the packed, register-blocked production kernel (AVX512-VNNI when
 * the target has it, an integer-exact portable loop otherwise) and
 * `qgemm_nt_ref` keeps naive loops as an independently-written
 * reference for equivalence tests. Integer accumulation makes the
 * kernel-vs-reference comparison exact (the ref widens to int64 to
 * prove the kernel's int32 accumulators never overflowed).
 *
 * Same ACCUMULATE contract as the fp32 GEMMs: `C += A * W^T` where
 * A is (m, k) quantized activations and W is a (n, k) QMatrix (rows =
 * output channels). Callers zero `c` first (Matrix::resize()
 * zero-fills).
 *
 * Accumulator safety: each u8 x s8 product is at most 255*128 =
 * 32,640, so int32 overflows only beyond k ~= 65,792. The kernels
 * assert k < 65,536; Voyager's largest reduction is ~600.
 */
#pragma once

#include "nn/matrix.hpp"
#include "nn/qmatrix.hpp"

namespace voyager::nn {

/**
 * C(m,n) += A(m,k) * W^T, requantized to fp32. Packs `w` lazily on
 * first use (cached in the QMatrix). Charges `nn.qgemm` op stats with
 * work = 2*m*n*k.
 */
void qgemm_nt(const QActivations &a, const QMatrix &w, Matrix &c);

/** Naive reference; bit-identical int32 accumulation. No op stats. */
void qgemm_nt_ref(const QActivations &a, const QMatrix &w, Matrix &c);

}  // namespace voyager::nn
