#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace voyager::nn {

double
gradient_check(Param &param, const std::function<double()> &loss_fn,
               const std::vector<std::size_t> &indices, float eps)
{
    double max_rel = 0.0;
    float *w = param.value.data();
    const float *g = param.grad.data();
    for (const std::size_t i : indices) {
        const float saved = w[i];
        w[i] = saved + eps;
        const double lp = loss_fn();
        w[i] = saved - eps;
        const double lm = loss_fn();
        w[i] = saved;
        const double numeric = (lp - lm) / (2.0 * eps);
        const double analytic = g[i];
        const double denom =
            std::max(1e-4, std::fabs(analytic) + std::fabs(numeric));
        max_rel = std::max(max_rel,
                           std::fabs(analytic - numeric) / denom);
    }
    return max_rel;
}

std::vector<std::size_t>
sample_indices(std::size_t n, std::size_t k)
{
    std::vector<std::size_t> out;
    if (n == 0)
        return out;
    const std::size_t kk = std::min(n, k);
    out.reserve(kk);
    for (std::size_t i = 0; i < kk; ++i)
        out.push_back(i * n / kk);
    return out;
}

}  // namespace voyager::nn
