#include "nn/lstm.hpp"

#include <cassert>
#include <cmath>

#include "nn/layers.hpp"
#include "nn/ops.hpp"
#include "nn/serialize.hpp"

namespace voyager::nn {

namespace {

/**
 * Fused per-row gate pass shared by forward() and
 * forward_inference() so the two stay bit-identical: bias add +
 * activations + cell/hidden update in one sweep over a row of z.
 * `cp == nullptr` means c_{-1} = 0 (the t = 0 step).
 */
inline void
lstm_gate_row(float *zr, const float *bias, const float *cp, float *cr,
              float *hr, std::size_t h)
{
    for (std::size_t j = 0; j < h; ++j) {
        float &gi = zr[j];
        float &gf = zr[h + j];
        float &gg = zr[2 * h + j];
        float &go = zr[3 * h + j];
        gi = 1.0f / (1.0f + std::exp(-(gi + bias[j])));
        gf = 1.0f / (1.0f + std::exp(-(gf + bias[h + j])));
        gg = std::tanh(gg + bias[2 * h + j]);
        go = 1.0f / (1.0f + std::exp(-(go + bias[3 * h + j])));
        cr[j] = gi * gg + (cp ? gf * cp[j] : 0.0f);
        hr[j] = go * std::tanh(cr[j]);
    }
}

}  // namespace

Lstm::Lstm(std::size_t in_dim, std::size_t hidden, Rng &rng)
    : wx_(in_dim, 4 * hidden), wh_(hidden, 4 * hidden), b_(1, 4 * hidden)
{
    glorot_init(wx_.value, rng);
    glorot_init(wh_.value, rng);
    // Forget-gate bias starts at 1 (standard trick for gradient flow).
    const std::size_t h = hidden;
    for (std::size_t c = h; c < 2 * h; ++c)
        b_.value.at(0, c) = 1.0f;
}

void
Lstm::forward(const std::vector<Matrix> &xs, Matrix &h_last)
{
    assert(!xs.empty());
    const std::size_t batch = xs[0].rows();
    const std::size_t h = hidden();
    const std::size_t T = xs.size();

    // Borrow the caller's sequence (header contract) instead of deep-
    // copying it, and grow the per-step caches without destroying
    // their buffers so repeated calls stop reallocating.
    xs_ = &xs;
    steps_ = T;
    if (gates_.size() < T) {
        gates_.resize(T);
        cs_.resize(T);
        hs_.resize(T);
    }

    const float *bias = b_.value.data();
    for (std::size_t t = 0; t < T; ++t) {
        assert(xs[t].rows() == batch && xs[t].cols() == in_dim());
        Matrix &z = gates_[t];
        z.resize(batch, 4 * h);  // zero-fills: the GEMMs accumulate
        gemm_nn(xs[t], wx_.value, z);
        if (t > 0)  // h_{-1} = 0 contributes nothing at t = 0
            gemm_nn(hs_[t - 1], wh_.value, z);

        cs_[t].resize(batch, h);
        hs_[t].resize(batch, h);
        // Fused gate pass (c_{-1} = 0 at t = 0; previous states are
        // read in place, not copied per step).
        ScopedOpTimer timer(op_stats().lstm_gate, batch * h);
        for (std::size_t r = 0; r < batch; ++r) {
            lstm_gate_row(z.row(r), bias,
                          t > 0 ? cs_[t - 1].row(r) : nullptr,
                          cs_[t].row(r), hs_[t].row(r), h);
        }
    }
    h_last = hs_[T - 1];
}

void
Lstm::forward_inference(const std::vector<Matrix> &xs, Matrix &h_last)
{
    assert(!xs.empty());
    const std::size_t batch = xs[0].rows();
    const std::size_t h = hidden();
    const std::size_t T = xs.size();

    // Serving path: no per-step caches, so memory stays
    // O(batch x hidden) for any sequence length. Poison the training
    // caches — backward() asserts on them.
    xs_ = nullptr;
    steps_ = 0;

    const float *bias = b_.value.data();
    Matrix &z = inf_z_;
    Matrix &h_prev = inf_h_;
    for (std::size_t t = 0; t < T; ++t) {
        assert(xs[t].rows() == batch && xs[t].cols() == in_dim());
        Matrix &c_prev = inf_c_[t % 2];
        Matrix &c_cur = inf_c_[(t + 1) % 2];
        z.resize(batch, 4 * h);  // zero-fills: the GEMMs accumulate
        gemm_nn(xs[t], wx_.value, z);
        if (t > 0)  // h_{-1} = 0 contributes nothing at t = 0
            gemm_nn(h_prev, wh_.value, z);

        c_cur.resize_uninit(batch, h);
        if (t == 0)
            h_prev.resize_uninit(batch, h);
        // h_prev is rewritten to h_t in place: both GEMMs for this
        // step have already consumed it.
        ScopedOpTimer timer(op_stats().lstm_gate, batch * h);
        for (std::size_t r = 0; r < batch; ++r) {
            lstm_gate_row(z.row(r), bias,
                          t > 0 ? c_prev.row(r) : nullptr,
                          c_cur.row(r), h_prev.row(r), h);
        }
    }
    h_last = h_prev;
}

void
Lstm::backward(const Matrix &dh_last, std::vector<Matrix> &dxs)
{
    assert(xs_ != nullptr && steps_ > 0);
    const std::vector<Matrix> &xs = *xs_;
    const std::size_t T = steps_;
    assert(xs.size() == T);
    const std::size_t batch = xs[0].rows();
    const std::size_t h = hidden();
    assert(dh_last.rows() == batch && dh_last.cols() == h);

    dxs.assign(T, Matrix());
    Matrix dh = dh_last;
    Matrix dc(batch, h);
    Matrix dz(batch, 4 * h);

    for (std::size_t t = T; t-- > 0;) {
        const Matrix &gates = gates_[t];
        const Matrix &c = cs_[t];
        const Matrix *c_prev = t > 0 ? &cs_[t - 1] : nullptr;

        {
            ScopedOpTimer timer(op_stats().lstm_gate, batch * h);
            for (std::size_t r = 0; r < batch; ++r) {
                const float *zr = gates.row(r);
                const float *cr = c.row(r);
                const float *cpr = c_prev ? c_prev->row(r) : nullptr;
                const float *dhr = dh.row(r);
                float *dcr = dc.row(r);
                float *dzr = dz.row(r);
                for (std::size_t j = 0; j < h; ++j) {
                    const float gi = zr[j];
                    const float gf = zr[h + j];
                    const float gg = zr[2 * h + j];
                    const float go = zr[3 * h + j];
                    const float tc = std::tanh(cr[j]);
                    const float d_h = dhr[j];
                    const float d_o = d_h * tc;
                    float d_c = dcr[j] + d_h * go * (1.0f - tc * tc);
                    const float d_i = d_c * gg;
                    const float d_f = d_c * (cpr ? cpr[j] : 0.0f);
                    const float d_g = d_c * gi;
                    dcr[j] = d_c * gf;  // flows to step t-1
                    dzr[j] = d_i * gi * (1.0f - gi);
                    dzr[h + j] = d_f * gf * (1.0f - gf);
                    dzr[2 * h + j] = d_g * (1.0f - gg * gg);
                    dzr[3 * h + j] = d_o * go * (1.0f - go);
                }
            }
        }

        gemm_tn(xs[t], dz, wx_.grad);
        bias_backward(dz, b_.grad);
        dxs[t].resize(batch, in_dim());
        gemm_nt(dz, wx_.value, dxs[t]);

        if (t > 0) {
            gemm_tn(hs_[t - 1], dz, wh_.grad);
            dh.resize(batch, h);  // zero-fills: gemm_nt accumulates
            gemm_nt(dz, wh_.value, dh);
        }
    }
}

void
Lstm::save_state(std::ostream &os) const
{
    save_matrix(os, wx_.value);
    save_matrix(os, wh_.value);
    save_matrix(os, b_.value);
}

void
Lstm::load_state(std::istream &is)
{
    load_matrix_into(is, wx_.value, "lstm wx");
    load_matrix_into(is, wh_.value, "lstm wh");
    load_matrix_into(is, b_.value, "lstm bias");
}

}  // namespace voyager::nn
