#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace voyager::nn {

void
magnitude_prune(Matrix &m, double sparsity)
{
    if (sparsity <= 0.0 || m.size() == 0)
        return;
    std::vector<float> mags(m.size());
    const float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        mags[i] = std::fabs(d[i]);
    auto k = static_cast<std::size_t>(
        sparsity * static_cast<double>(m.size()));
    k = std::min(k, m.size() - 1);
    std::nth_element(mags.begin(), mags.begin() + k, mags.end());
    const float threshold = mags[k];
    float *w = m.data();
    std::size_t zeroed = 0;
    for (std::size_t i = 0; i < m.size() && zeroed < k; ++i) {
        if (std::fabs(w[i]) <= threshold && w[i] != 0.0f) {
            w[i] = 0.0f;
            ++zeroed;
        }
    }
}

std::uint64_t
nonzero_count(const Matrix &m)
{
    std::uint64_t n = 0;
    const float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        n += d[i] != 0.0f;
    return n;
}

float
quantize_dequantize_int8(Matrix &m)
{
    if (m.size() == 0)
        return 0.0f;
    float lo = m.data()[0];
    float hi = lo;
    const float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i) {
        lo = std::min(lo, d[i]);
        hi = std::max(hi, d[i]);
    }
    if (lo == hi)
        return 0.0f;
    const float scale = (hi - lo) / 255.0f;
    float max_err = 0.0f;
    float *w = m.data();
    for (std::size_t i = 0; i < m.size(); ++i) {
        if (w[i] == 0.0f)
            continue;  // preserve pruned zeros exactly
        const float q = std::round((w[i] - lo) / scale);
        const float deq = lo + q * scale;
        max_err = std::max(max_err, std::fabs(deq - w[i]));
        w[i] = deq;
    }
    return max_err;
}

TensorStorage
measure_storage(const Matrix &m, std::uint32_t bits_per_weight)
{
    TensorStorage s;
    s.elements = m.size();
    s.nonzero = nonzero_count(m);
    s.bits_per_weight = bits_per_weight;
    return s;
}

}  // namespace voyager::nn
