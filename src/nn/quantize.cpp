#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace voyager::nn {

void
magnitude_prune(Matrix &m, double sparsity)
{
    if (sparsity <= 0.0 || m.size() == 0)
        return;
    std::vector<float> mags(m.size());
    const float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        mags[i] = std::fabs(d[i]);
    auto k = static_cast<std::size_t>(
        sparsity * static_cast<double>(m.size()));
    k = std::min(k, m.size() - 1);
    std::nth_element(mags.begin(), mags.begin() + k, mags.end());
    const float threshold = mags[k];
    float *w = m.data();
    std::size_t zeroed = 0;
    for (std::size_t i = 0; i < m.size() && zeroed < k; ++i) {
        if (std::fabs(w[i]) <= threshold && w[i] != 0.0f) {
            w[i] = 0.0f;
            ++zeroed;
        }
    }
}

std::uint64_t
nonzero_count(const Matrix &m)
{
    std::uint64_t n = 0;
    const float *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        n += d[i] != 0.0f;
    return n;
}

double
QuantError::rms() const
{
    return elements
        ? std::sqrt(sum_sq / static_cast<double>(elements))
        : 0.0;
}

void
QuantError::merge(const QuantError &o)
{
    max_err = std::max(max_err, o.max_err);
    sum_sq += o.sum_sq;
    elements += o.elements;
}

QuantError
quantize_dequantize_int8(Matrix &m, QuantAxis axis)
{
    QuantError err;
    err.elements = m.size();
    const std::size_t channels =
        axis == QuantAxis::Row ? m.rows() : m.cols();
    for (std::size_t ch = 0; ch < channels; ++ch) {
        const std::size_t len =
            axis == QuantAxis::Row ? m.cols() : m.rows();
        float maxabs = 0.0f;
        for (std::size_t i = 0; i < len; ++i) {
            const float v =
                axis == QuantAxis::Row ? m.at(ch, i) : m.at(i, ch);
            maxabs = std::max(maxabs, std::fabs(v));
        }
        if (maxabs == 0.0f)
            continue;  // all-zero channel: exactly representable
        const float scale = maxabs / 127.0f;
        const float inv = 127.0f / maxabs;
        for (std::size_t i = 0; i < len; ++i) {
            float &w = axis == QuantAxis::Row ? m.at(ch, i)
                                              : m.at(i, ch);
            if (w == 0.0f)
                continue;  // pruned zeros stay exactly zero
            const auto q = std::clamp<long>(std::lround(w * inv),
                                            -127, 127);
            const float deq = static_cast<float>(q) * scale;
            const float e = std::fabs(deq - w);
            err.max_err = std::max(err.max_err, e);
            err.sum_sq += static_cast<double>(e) * e;
            w = deq;
        }
    }
    return err;
}

TensorStorage
measure_storage(const Matrix &m, std::uint32_t bits_per_weight)
{
    TensorStorage s;
    s.elements = m.size();
    s.nonzero = nonzero_count(m);
    s.bits_per_weight = bits_per_weight;
    return s;
}

}  // namespace voyager::nn
