#include "nn/adam.hpp"

#include <cmath>

#include "nn/ops.hpp"
#include "nn/serialize.hpp"
#include "util/fault_injection.hpp"
#include "util/health.hpp"

namespace voyager::nn {

Adam::Adam(const AdamConfig &cfg) : cfg_(cfg) {}

void
Adam::add_param(Param *p)
{
    DenseState s;
    s.param = p;
    s.m = Matrix(p->value.rows(), p->value.cols());
    s.v = Matrix(p->value.rows(), p->value.cols());
    dense_.push_back(std::move(s));
}

void
Adam::add_embedding(Embedding *e)
{
    SparseState s;
    s.emb = e;
    s.m = Matrix(e->vocab(), e->dim());
    s.v = Matrix(e->vocab(), e->dim());
    sparse_.push_back(std::move(s));
}

void
Adam::step()
{
    // Fault-injection hook: may ask for a poisoned gradient element
    // before the update or a poisoned weight element after it. A
    // no-op unless a FaultPlan is installed.
    const OptStepFaults faults = fault_injector().on_optimizer_step();
    if (faults.grad && !dense_.empty() &&
        dense_[0].param->grad.size() > 0) {
        dense_[0].param->grad.data()[0] =
            static_cast<float>(*faults.grad);
    }

    std::vector<Matrix *> grads;
    for (auto &s : dense_)
        grads.push_back(&s.param->grad);
    // Embedding grads participate in the global norm as well.
    for (auto &s : sparse_)
        grads.push_back(&s.emb->param().grad);

    double total = 0.0;
    for (const Matrix *g : grads)
        total += sum_squares(*g);
    const double norm = std::sqrt(total);
    if (!std::isfinite(norm)) {
        // A NaN/Inf gradient would smear poison into every moment and
        // weight. Drop the batch instead: zero the gradients, leave
        // t_ and the moments untouched, and count the skip.
        ++skipped_steps_;
        ++health_stats().skipped_steps;
        zero_grad();
        return;
    }
    if (cfg_.clip_norm > 0.0 && norm > cfg_.clip_norm && norm > 0.0) {
        // Inline clip reusing the norm computed for the finite-ness
        // check (clip_gradients would sweep the gradients again).
        const float scale = static_cast<float>(cfg_.clip_norm / norm);
        for (Matrix *g : grads)
            scale_inplace(*g, scale);
    }

    ++t_;
    const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
    const float lr_t =
        static_cast<float>(cfg_.lr * std::sqrt(bc2) / bc1);
    const auto b1 = static_cast<float>(cfg_.beta1);
    const auto b2 = static_cast<float>(cfg_.beta2);
    const auto eps = static_cast<float>(cfg_.eps);

    auto update_span = [&](float *w, float *g, float *m, float *v,
                           std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            m[i] = b1 * m[i] + (1.0f - b1) * g[i];
            v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
            w[i] -= lr_t * m[i] / (std::sqrt(v[i]) + eps);
            g[i] = 0.0f;
        }
    };

    for (auto &s : dense_) {
        update_span(s.param->value.data(), s.param->grad.data(),
                    s.m.data(), s.v.data(), s.param->value.size());
    }
    for (auto &s : sparse_) {
        Param &p = s.emb->param();
        const std::size_t dim = p.value.cols();
        for (const auto row : s.emb->touched()) {
            update_span(p.value.row(row), p.grad.row(row), s.m.row(row),
                        s.v.row(row), dim);
        }
        s.emb->clear_touched();
    }

    if (faults.weight && !dense_.empty() &&
        dense_[0].param->value.size() > 0) {
        dense_[0].param->value.data()[0] =
            static_cast<float>(*faults.weight);
    }
}

void
Adam::save_state(std::ostream &os) const
{
    write_u64(os, t_);
    write_f64(os, cfg_.lr);  // decay_lr mutates it: schedule position
    write_u64(os, dense_.size());
    for (const auto &s : dense_) {
        save_matrix(os, s.m);
        save_matrix(os, s.v);
    }
    write_u64(os, sparse_.size());
    for (const auto &s : sparse_) {
        save_matrix(os, s.m);
        save_matrix(os, s.v);
    }
}

void
Adam::load_state(std::istream &is)
{
    t_ = read_u64(is);
    cfg_.lr = read_f64(is);
    expect_u64(is, dense_.size(), "adam dense parameter count");
    for (auto &s : dense_) {
        load_matrix_into(is, s.m, "adam first moment");
        load_matrix_into(is, s.v, "adam second moment");
    }
    expect_u64(is, sparse_.size(), "adam sparse parameter count");
    for (auto &s : sparse_) {
        load_matrix_into(is, s.m, "adam first moment");
        load_matrix_into(is, s.v, "adam second moment");
    }
}

void
Adam::zero_grad()
{
    for (auto &s : dense_)
        s.param->zero_grad();
    for (auto &s : sparse_) {
        Param &p = s.emb->param();
        for (const auto row : s.emb->touched()) {
            float *g = p.grad.row(row);
            for (std::size_t c = 0; c < p.grad.cols(); ++c)
                g[c] = 0.0f;
        }
        s.emb->clear_touched();
    }
}

}  // namespace voyager::nn
