#include "prefetch/hybrid.hpp"

#include <stdexcept>

#include "prefetch/best_offset.hpp"
#include "prefetch/isb.hpp"

namespace voyager::prefetch {

Hybrid::Hybrid(std::string name,
               std::vector<std::unique_ptr<Prefetcher>> parts,
               std::vector<std::uint32_t> degrees)
    : name_(std::move(name)), parts_(std::move(parts)),
      degrees_(std::move(degrees))
{
    if (parts_.size() != degrees_.size() || parts_.empty())
        throw std::invalid_argument("hybrid: parts/degrees mismatch");
}

std::vector<Addr>
Hybrid::on_access(const sim::LlcAccess &access)
{
    std::vector<Addr> out;
    for (std::size_t i = 0; i < parts_.size(); ++i) {
        // Train every component; take candidates up to its share.
        auto cands = parts_[i]->on_access(access);
        for (std::size_t k = 0; k < cands.size() && k < degrees_[i]; ++k)
            out.push_back(cands[k]);
    }
    return out;
}

std::uint64_t
Hybrid::storage_bytes() const
{
    std::uint64_t total = 0;
    for (const auto &p : parts_)
        total += p->storage_bytes();
    return total;
}

std::unique_ptr<Prefetcher>
make_isb_bo_hybrid(std::uint32_t total_degree)
{
    // Equal split; degree 1 falls back to ISB alone (paper Fig. 9).
    const std::uint32_t isb_share =
        total_degree <= 1 ? total_degree : total_degree / 2;
    const std::uint32_t bo_share =
        total_degree <= 1 ? 0 : total_degree - isb_share;
    std::vector<std::unique_ptr<Prefetcher>> parts;
    parts.push_back(std::make_unique<Isb>(isb_share == 0 ? 1 : isb_share));
    BestOffsetConfig bo_cfg;
    bo_cfg.degree = bo_share == 0 ? 1 : bo_share;
    parts.push_back(std::make_unique<BestOffset>(bo_cfg));
    return std::make_unique<Hybrid>(
        "isb+bo", std::move(parts),
        std::vector<std::uint32_t>{isb_share, bo_share});
}

}  // namespace voyager::prefetch
