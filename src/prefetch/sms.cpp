#include "prefetch/sms.hpp"

#include <algorithm>

namespace voyager::prefetch {

Sms::Sms(const SmsConfig &cfg) : cfg_(cfg) {}

void
Sms::close_generation(Addr /*region*/, const Generation &gen)
{
    // Merge into the pattern history (OR of observed footprints keeps
    // the union — the idealized variant the paper compares against).
    pht_[gen.sig] |= gen.footprint;
}

std::vector<Addr>
Sms::on_access(const sim::LlcAccess &access)
{
    ++access_counter_;
    const Addr region = access.line >> cfg_.region_shift;
    const auto offset = static_cast<std::uint32_t>(
        access.line & ((1ull << cfg_.region_shift) - 1));

    // Expire stale generations (interval-based close).
    if (active_.size() >= cfg_.max_active) {
        for (auto it = active_.begin(); it != active_.end();) {
            if (access_counter_ - it->second.last_access >
                cfg_.generation_timeout) {
                close_generation(it->first, it->second);
                it = active_.erase(it);
            } else {
                ++it;
            }
        }
    }

    std::vector<Addr> out;
    auto it = active_.find(region);
    if (it == active_.end()) {
        // Trigger access: open a generation and replay the stored
        // footprint for this signature, if any.
        Generation gen;
        gen.sig = signature(access.pc, offset);
        gen.footprint = 1ull << offset;
        gen.last_access = access_counter_;
        if (auto pat = pht_.find(gen.sig); pat != pht_.end()) {
            const Addr base = region << cfg_.region_shift;
            for (std::uint32_t b = 0;
                 b < (1u << cfg_.region_shift) &&
                 out.size() < cfg_.degree;
                 ++b) {
                if (b != offset && (pat->second >> b) & 1)
                    out.push_back(base + b);
            }
        }
        active_.emplace(region, gen);
    } else {
        it->second.footprint |= 1ull << offset;
        it->second.last_access = access_counter_;
    }
    return out;
}

std::uint64_t
Sms::storage_bytes() const
{
    // PHT entries: 8 B signature + 8 B footprint; active generations
    // likewise plus a timestamp.
    return pht_.size() * 16 + active_.size() * 24;
}

}  // namespace voyager::prefetch
