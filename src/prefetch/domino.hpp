/**
 * @file
 * Domino (Bakhshalipour et al., HPCA 2018): global-stream temporal
 * prefetching keyed by the *two* most recent addresses, with a
 * single-address fallback (paper Eq. 4). Degree-k prediction follows
 * the learned chain. Idealized: unbounded tables.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/prefetcher.hpp"

namespace voyager::prefetch {

using sim::Prefetcher;
using voyager::Addr;

/** Idealized Domino. */
class Domino final : public Prefetcher
{
  public:
    explicit Domino(std::uint32_t degree = 1);

    std::string name() const override { return "domino"; }
    std::vector<Addr> on_access(const sim::LlcAccess &access) override;
    std::uint64_t storage_bytes() const override;

  private:
    static std::uint64_t
    pair_key(Addr a, Addr b)
    {
        // Mix the two line addresses into one 64-bit key.
        return a * 0x9e3779b97f4a7c15ull ^ (b + 0x165667b19e3779f9ull +
                                            (a << 12) + (a >> 4));
    }

    std::uint32_t degree_;
    bool have_prev_ = false;
    bool have_prev2_ = false;
    Addr prev_ = 0;
    Addr prev2_ = 0;
    std::unordered_map<std::uint64_t, Addr> pair_next_;
    std::unordered_map<Addr, Addr> single_next_;
};

}  // namespace voyager::prefetch
