/**
 * @file
 * STMS (Sampled Temporal Memory Streaming, Wenisch et al., HPCA 2009):
 * global-stream temporal prefetching. Learns
 * P(Addr_{t+1} | Addr_t) over the global LLC access stream via a
 * history buffer plus an index table (paper Eq. 2). Idealized:
 * unbounded metadata, zero-latency lookup.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/prefetcher.hpp"
#include "util/flat_hash.hpp"

namespace voyager::prefetch {

using sim::Prefetcher;
using voyager::Addr;

/** Idealized STMS. */
class Stms final : public Prefetcher
{
  public:
    explicit Stms(std::uint32_t degree = 1);

    std::string name() const override { return "stms"; }
    std::vector<Addr> on_access(const sim::LlcAccess &access) override;
    std::uint64_t storage_bytes() const override;
    void export_stats(StatRegistry &reg,
                      const std::string &prefix) const override;

    /**
     * Actual bytes held by the history buffer plus the flat index
     * table, as opposed to the idealized per-entry model of
     * storage_bytes() (golden-pinned; must not drift).
     */
    std::uint64_t
    table_bytes() const
    {
        return history_.capacity() * sizeof(Addr) +
               index_.storage_bytes();
    }

  private:
    std::uint32_t degree_;
    std::vector<Addr> history_;                ///< global GHB
    FlatHashMap<Addr, std::uint64_t> index_;   ///< line -> last pos
};

}  // namespace voyager::prefetch
