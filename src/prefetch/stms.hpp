/**
 * @file
 * STMS (Sampled Temporal Memory Streaming, Wenisch et al., HPCA 2009):
 * global-stream temporal prefetching. Learns
 * P(Addr_{t+1} | Addr_t) over the global LLC access stream via a
 * history buffer plus an index table (paper Eq. 2). Idealized:
 * unbounded metadata, zero-latency lookup.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/prefetcher.hpp"

namespace voyager::prefetch {

using sim::Prefetcher;
using voyager::Addr;

/** Idealized STMS. */
class Stms final : public Prefetcher
{
  public:
    explicit Stms(std::uint32_t degree = 1);

    std::string name() const override { return "stms"; }
    std::vector<Addr> on_access(const sim::LlcAccess &access) override;
    std::uint64_t storage_bytes() const override;
    void export_stats(StatRegistry &reg,
                      const std::string &prefix) const override;

  private:
    std::uint32_t degree_;
    std::vector<Addr> history_;                       ///< global GHB
    std::unordered_map<Addr, std::uint64_t> index_;   ///< line -> last pos
};

}  // namespace voyager::prefetch
