/**
 * @file
 * ISB (Irregular Stream Buffer, Jain & Lin, MICRO 2013): PC-localized
 * temporal prefetching through a structural address space. Consecutive
 * addresses in a PC-localized stream are mapped to consecutive
 * *structural* addresses; prediction walks the structural space, which
 * linearizes irregular streams (paper Eq. 3). Idealized: unbounded
 * physical<->structural mappings, zero-latency lookup.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/prefetcher.hpp"
#include "util/flat_hash.hpp"

namespace voyager::prefetch {

using sim::Prefetcher;
using voyager::Addr;

/** Idealized ISB. */
class Isb final : public Prefetcher
{
  public:
    /**
     * @param degree prefetches per trigger
     * @param stream_chunk structural addresses reserved per new stream
     */
    explicit Isb(std::uint32_t degree = 1, std::uint32_t stream_chunk = 256);

    std::string name() const override { return "isb"; }
    std::vector<Addr> on_access(const sim::LlcAccess &access) override;
    std::uint64_t storage_bytes() const override;
    void export_stats(StatRegistry &reg,
                      const std::string &prefix) const override;

    /** Number of allocated structural streams (for tests/diagnostics). */
    std::uint64_t num_streams() const { return next_stream_base_ / chunk_; }

    /**
     * Actual bytes held by the flat metadata tables, as opposed to
     * the idealized per-entry model of storage_bytes() (which feeds
     * the golden-pinned Fig. 5/17 accounting and must not drift).
     */
    std::uint64_t
    table_bytes() const
    {
        return last_by_pc_.storage_bytes() +
               phys_to_struct_.storage_bytes() +
               struct_to_phys_.storage_bytes();
    }

  private:
    /** Map B to structural address s, undoing any previous mapping. */
    void map_structural(Addr line, std::uint64_t s);

    std::uint32_t degree_;
    std::uint32_t chunk_;
    std::uint64_t next_stream_base_ = 0;

    FlatHashMap<Addr, Addr> last_by_pc_;          ///< training units
    FlatHashMap<Addr, std::uint64_t> phys_to_struct_;
    FlatHashMap<std::uint64_t, Addr> struct_to_phys_;
};

}  // namespace voyager::prefetch
