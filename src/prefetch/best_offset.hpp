/**
 * @file
 * BO (Best-Offset prefetcher, Michaud, HPCA 2016): a spatial
 * prefetcher that continuously scores a fixed list of candidate
 * offsets against a recent-requests table and prefetches X + D with
 * the current best offset D (paper Eq. 5/6 family).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "sim/prefetcher.hpp"

namespace voyager::prefetch {

using sim::Prefetcher;
using voyager::Addr;

/** Best-Offset prefetcher configuration. */
struct BestOffsetConfig
{
    std::uint32_t degree = 1;
    /** Recent-requests table capacity. */
    std::size_t rr_size = 256;
    /** Score needed for an offset to be adopted. */
    int score_threshold = 20;
    /** Saturation score: adopt immediately when reached. */
    int max_score = 31;
    /** Learning rounds per phase (each round tests every offset once). */
    int max_rounds = 100;
    /** Restrict prefetches to the trigger's 4 KiB page. */
    bool same_page_only = true;
};

/** Best-Offset prefetcher. */
class BestOffset final : public Prefetcher
{
  public:
    explicit BestOffset(const BestOffsetConfig &cfg = {});

    std::string name() const override { return "bo"; }
    std::vector<Addr> on_access(const sim::LlcAccess &access) override;
    std::uint64_t storage_bytes() const override;
    void export_stats(StatRegistry &reg,
                      const std::string &prefix) const override;

    /** Currently adopted offset (0 = prefetching off). */
    int current_offset() const { return best_offset_; }

    /** The classic 52-entry offset list (factors 2,3,5 up to 256). */
    static const std::vector<int> &offset_list();

  private:
    void rr_insert(Addr line);
    bool rr_contains(Addr line) const;
    void finish_phase();

    BestOffsetConfig cfg_;
    std::deque<Addr> rr_fifo_;
    std::unordered_set<Addr> rr_set_;

    std::vector<int> scores_;
    std::size_t test_cursor_ = 0;   ///< next offset index to test
    int round_ = 0;
    int best_offset_ = 0;           ///< adopted offset, 0 = off
};

}  // namespace voyager::prefetch
