#include "prefetch/registry.hpp"

#include <stdexcept>

#include "prefetch/best_offset.hpp"
#include "prefetch/domino.hpp"
#include "prefetch/hybrid.hpp"
#include "prefetch/isb.hpp"
#include "prefetch/sms.hpp"
#include "prefetch/stms.hpp"
#include "prefetch/stream_group.hpp"
#include "prefetch/stride.hpp"

namespace voyager::prefetch {

std::unique_ptr<sim::Prefetcher>
make_prefetcher(const std::string &name, std::uint32_t degree)
{
    if (name == "none")
        return std::make_unique<sim::NullPrefetcher>();
    if (name == "stms")
        return std::make_unique<Stms>(degree);
    if (name == "isb")
        return std::make_unique<Isb>(degree);
    if (name == "domino")
        return std::make_unique<Domino>(degree);
    if (name == "bo") {
        BestOffsetConfig cfg;
        cfg.degree = degree;
        return std::make_unique<BestOffset>(cfg);
    }
    if (name == "ip_stride")
        return std::make_unique<IpStride>(degree);
    if (name == "next_line")
        return std::make_unique<NextLine>(degree);
    if (name == "sms") {
        SmsConfig cfg;
        cfg.degree = degree;
        return std::make_unique<Sms>(cfg);
    }
    if (name == "stream_group") {
        StreamGroupConfig cfg;
        cfg.max_degree = degree;
        return std::make_unique<StreamGroup>(cfg);
    }
    if (name == "isb+bo")
        return make_isb_bo_hybrid(degree);
    throw std::invalid_argument("unknown prefetcher: " + name);
}

const std::vector<std::string> &
rule_based_names()
{
    static const std::vector<std::string> names = {
        "stms", "isb", "domino", "bo", "sms", "ip_stride", "next_line",
        "stream_group", "isb+bo",
    };
    return names;
}

std::vector<std::vector<voyager::Addr>>
oracle_predictions(const std::vector<sim::LlcAccess> &stream,
                   std::uint32_t degree)
{
    std::vector<std::vector<voyager::Addr>> preds(stream.size());
    // Collect future load lines with a backward sweep.
    std::vector<voyager::Addr> next_loads;
    std::vector<std::size_t> next_load_idx(stream.size(),
                                           stream.size());
    std::size_t next = stream.size();
    for (std::size_t i = stream.size(); i-- > 0;) {
        next_load_idx[i] = next;
        if (stream[i].is_load)
            next = i;
    }
    for (std::size_t i = 0; i < stream.size(); ++i) {
        std::size_t j = next_load_idx[i];
        for (std::uint32_t k = 0; k < degree && j < stream.size();
             ++k, j = next_load_idx[j]) {
            preds[i].push_back(stream[j].line);
        }
    }
    return preds;
}

}  // namespace voyager::prefetch
