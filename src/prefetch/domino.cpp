#include "prefetch/domino.hpp"

namespace voyager::prefetch {

Domino::Domino(std::uint32_t degree) : degree_(degree) {}

std::vector<Addr>
Domino::on_access(const sim::LlcAccess &access)
{
    const Addr line = access.line;

    // --- Training: (prev2, prev) -> line and prev -> line. ---
    if (have_prev_) {
        single_next_[prev_] = line;
        if (have_prev2_)
            pair_next_[pair_key(prev2_, prev_)] = line;
    }

    // --- Prediction: walk the chain starting from (prev, line). ---
    std::vector<Addr> out;
    Addr a = prev_;
    bool have_a = have_prev_;
    Addr b = line;
    for (std::uint32_t k = 0; k < degree_; ++k) {
        Addr next = 0;
        bool found = false;
        if (have_a) {
            auto it = pair_next_.find(pair_key(a, b));
            if (it != pair_next_.end()) {
                next = it->second;
                found = true;
            }
        }
        if (!found) {
            auto it = single_next_.find(b);
            if (it != single_next_.end()) {
                next = it->second;
                found = true;
            }
        }
        if (!found)
            break;
        out.push_back(next);
        a = b;
        have_a = true;
        b = next;
    }

    have_prev2_ = have_prev_;
    prev2_ = prev_;
    have_prev_ = true;
    prev_ = line;
    return out;
}

std::uint64_t
Domino::storage_bytes() const
{
    // Pair table: 8 B key + 8 B next; single table likewise.
    return pair_next_.size() * 16 + single_next_.size() * 16;
}

}  // namespace voyager::prefetch
