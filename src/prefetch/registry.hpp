/**
 * @file
 * Factory for rule-based prefetchers by name, plus the oracle
 * prediction helper used by the paper's benchmark-selection
 * methodology ("an oracle that always correctly prefetches the next
 * load").
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/prefetcher.hpp"
#include "sim/simulator.hpp"

namespace voyager::prefetch {

/**
 * Create a rule-based prefetcher.
 * @param name one of: none, stms, isb, domino, bo, ip_stride,
 *             next_line, sms, stream_group, isb+bo
 * @throws std::invalid_argument for unknown names.
 */
std::unique_ptr<sim::Prefetcher>
make_prefetcher(const std::string &name, std::uint32_t degree = 1);

/** Names accepted by make_prefetcher (excluding "none"). */
const std::vector<std::string> &rule_based_names();

/**
 * Oracle predictions over an LLC stream: for access i, the line of the
 * next *load* access after i. Feed into sim::ReplayPrefetcher.
 */
std::vector<std::vector<voyager::Addr>>
oracle_predictions(const std::vector<sim::LlcAccess> &stream,
                   std::uint32_t degree = 1);

}  // namespace voyager::prefetch
