#include "prefetch/stms.hpp"

namespace voyager::prefetch {

Stms::Stms(std::uint32_t degree) : degree_(degree) {}

std::vector<Addr>
Stms::on_access(const sim::LlcAccess &access)
{
    std::vector<Addr> out;
    const Addr line = access.line;
    auto it = index_.find(line);
    if (it != index_.end()) {
        // Predict the lines that followed the previous occurrence in
        // the global history buffer.
        const std::uint64_t pos = it->second;
        for (std::uint32_t k = 1; k <= degree_; ++k) {
            const std::uint64_t p = pos + k;
            if (p >= history_.size())
                break;
            out.push_back(history_[p]);
        }
    }
    index_[line] = history_.size();
    history_.push_back(line);
    return out;
}

std::uint64_t
Stms::storage_bytes() const
{
    // History buffer entries (8 B line address) + index table entries
    // (8 B key + 8 B position). A real STMS keeps this off-chip.
    return history_.size() * 8 + index_.size() * 16;
}

void
Stms::export_stats(StatRegistry &reg, const std::string &prefix) const
{
    Prefetcher::export_stats(reg, prefix);
    reg.counter(prefix + ".history_entries") = history_.size();
    reg.counter(prefix + ".index_entries") = index_.size();
}

}  // namespace voyager::prefetch
