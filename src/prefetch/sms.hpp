/**
 * @file
 * SMS (Spatial Memory Streaming, Somogyi et al., ISCA 2006): learns
 * recurring spatial footprints within page-sized regions and replays
 * them on the next trigger access to a region with the same signature
 * (paper §2.1: "learns recurring spatial footprints within page-sized
 * regions and applies old spatial patterns to new unseen regions").
 * Included as an additional spatial baseline beyond BO.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/prefetcher.hpp"

namespace voyager::prefetch {

using sim::Prefetcher;
using voyager::Addr;

/** SMS parameters. */
struct SmsConfig
{
    std::uint32_t degree = 8;
    /** log2 lines per region (6 = 64 lines = one 4 KiB page). */
    int region_shift = 6;
    /** A generation ends after this many accesses without touching
     *  the region (interval-based generation close). */
    std::uint32_t generation_timeout = 256;
    /** Cap on concurrently tracked generations. */
    std::size_t max_active = 64;
};

/** Idealized SMS. */
class Sms final : public Prefetcher
{
  public:
    explicit Sms(const SmsConfig &cfg = {});

    std::string name() const override { return "sms"; }
    std::vector<Addr> on_access(const sim::LlcAccess &access) override;
    std::uint64_t storage_bytes() const override;

    std::size_t patterns_learned() const { return pht_.size(); }

  private:
    /** Signature: trigger PC + trigger offset within the region. */
    static std::uint64_t
    signature(Addr pc, std::uint32_t offset)
    {
        return pc * 131 + offset;
    }

    struct Generation
    {
        std::uint64_t sig = 0;
        std::uint64_t footprint = 0;     ///< bitmap of touched lines
        std::uint64_t last_access = 0;   ///< global access counter
    };

    void close_generation(Addr region, const Generation &gen);

    SmsConfig cfg_;
    std::uint64_t access_counter_ = 0;
    std::unordered_map<Addr, Generation> active_;        ///< by region
    std::unordered_map<std::uint64_t, std::uint64_t> pht_;  ///< sig->bits
};

}  // namespace voyager::prefetch
