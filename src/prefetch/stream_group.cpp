#include "prefetch/stream_group.hpp"

#include <cstdlib>
#include <limits>

namespace voyager::prefetch {

StreamGroup::StreamGroup(const StreamGroupConfig &cfg) : cfg_(cfg)
{
}

std::uint32_t
StreamGroup::class_cap(std::int64_t stride, std::uint32_t run_length) const
{
    const std::int64_t mag = stride < 0 ? -stride : stride;
    if (mag == 0)
        return 0;
    if (mag <= cfg_.dense_stride && run_length >= cfg_.dense_min_run)
        return cfg_.max_degree;
    if (mag <= cfg_.medium_stride && run_length >= cfg_.medium_min_run)
        return std::min(cfg_.medium_degree, cfg_.max_degree);
    return std::min(cfg_.sparse_degree, cfg_.max_degree);
}

bool
StreamGroup::stream_protected(const Stream &s) const
{
    return s.valid && s.stride != 0 &&
           s.confidence >= cfg_.confidence_threshold &&
           group_size(s.stride) >= cfg_.protect_members;
}

bool
StreamGroup::is_established(Addr pc, std::int64_t stride) const
{
    auto it = table_.find(pc);
    if (it == table_.end())
        return false;
    for (const Stream &s : it->second.streams) {
        if (s.valid && s.stride == stride &&
            s.confidence >= cfg_.confidence_threshold) {
            return true;
        }
    }
    return false;
}

void
StreamGroup::retire_stride(Addr pc, Stream &s)
{
    if (!s.valid || s.stride == 0)
        return;
    auto it = groups_.find(s.stride);
    if (it != groups_.end() && --it->second == 0)
        groups_.erase(it);
    if (s.run_length >= cfg_.history_min_run) {
        if (history_.size() >= cfg_.history_size)
            history_.pop_front();
        history_.push_back({pc, s.stride, s.run_length, access_counter_});
        ++patterns_recorded_;
    }
}

void
StreamGroup::set_stride(Addr pc, Stream &s, std::int64_t stride)
{
    s.stride = stride;
    if (stride == 0)
        return;
    ++groups_[stride];
    // Repetition fast-track: a stream identical to one that recently
    // completed a long run skips the training phase and inherits the
    // learned run length (so the degree ramp is already complete).
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
        if (it->pc != pc || it->stride != stride)
            continue;
        if (access_counter_ - it->time > cfg_.history_window)
            continue;
        if (s.confidence < cfg_.confidence_threshold)
            s.confidence = cfg_.confidence_threshold;
        if (s.run_length < it->run_length)
            s.run_length = it->run_length;
        ++fast_tracks_;
        break;
    }
}

StreamGroup::Entry &
StreamGroup::lookup_entry(Addr pc)
{
    auto it = table_.find(pc);
    if (it != table_.end())
        return it->second;
    if (table_.size() >= cfg_.max_pcs) {
        // Evict the LRU entry, preferring entries with no protected
        // stream so active groups survive churn from one-shot PCs.
        // The fallback keeps the table bounded regardless.
        auto pick = [&](bool respect_protection) {
            auto victim = table_.end();
            std::uint64_t oldest =
                std::numeric_limits<std::uint64_t>::max();
            for (auto e = table_.begin(); e != table_.end(); ++e) {
                if (respect_protection) {
                    bool any = false;
                    for (const Stream &s : e->second.streams)
                        any = any || stream_protected(s);
                    if (any)
                        continue;
                }
                if (e->second.last_access < oldest) {
                    oldest = e->second.last_access;
                    victim = e;
                }
            }
            return victim;
        };
        auto victim = pick(true);
        if (victim == table_.end())
            victim = pick(false);
        for (Stream &s : victim->second.streams)
            retire_stride(victim->first, s);
        table_.erase(victim);
        ++pc_evictions_;
    }
    Entry &e = table_[pc];
    e.streams.resize(cfg_.streams_per_pc);
    return e;
}

StreamGroup::Stream *
StreamGroup::match_stream(Entry &e, Addr line)
{
    // Pass 1: the access continues a trained stream exactly.
    for (Stream &s : e.streams) {
        if (s.valid && s.stride != 0 &&
            static_cast<std::int64_t>(line) ==
                static_cast<std::int64_t>(s.last_line) + s.stride) {
            return &s;
        }
    }
    // Pass 2: the access lands near a stream head (still training, or
    // the stride just changed). Closest head wins; first slot breaks
    // ties so matching stays deterministic.
    Stream *best = nullptr;
    std::int64_t best_dist = cfg_.match_window + 1;
    for (Stream &s : e.streams) {
        if (!s.valid)
            continue;
        std::int64_t d = static_cast<std::int64_t>(line) -
                         static_cast<std::int64_t>(s.last_line);
        if (d < 0)
            d = -d;
        if (d < best_dist) {
            best_dist = d;
            best = &s;
        }
    }
    return best;
}

StreamGroup::Stream &
StreamGroup::allocate_stream(Entry &e, Addr pc)
{
    Stream *victim = nullptr;
    for (Stream &s : e.streams) {
        if (!s.valid)
            return s;
    }
    // LRU among unprotected streams first; plain LRU as the bounded
    // fallback when every stream in the group is protected.
    for (int pass = 0; pass < 2 && victim == nullptr; ++pass) {
        std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
        for (Stream &s : e.streams) {
            if (pass == 0 && stream_protected(s))
                continue;
            if (s.last_access < oldest) {
                oldest = s.last_access;
                victim = &s;
            }
        }
    }
    retire_stride(pc, *victim);
    ++stream_evictions_;
    *victim = Stream{};
    return *victim;
}

std::vector<Addr>
StreamGroup::on_access(const sim::LlcAccess &access)
{
    ++access_counter_;
    std::vector<Addr> out;
    Entry &e = lookup_entry(access.pc);
    e.last_access = access_counter_;

    Stream *s = match_stream(e, access.line);
    if (s == nullptr) {
        Stream &fresh = allocate_stream(e, access.pc);
        fresh.valid = true;
        fresh.last_line = access.line;
        fresh.last_access = access_counter_;
        ++streams_created_;
        return out;
    }

    // IpStride-equivalent confidence update: this is what makes the
    // single-stream behaviour bit-compatible with the stride baseline
    // after warm-up (tests/stream_group_test.cpp pins it).
    const std::int64_t stride = static_cast<std::int64_t>(access.line) -
                                static_cast<std::int64_t>(s->last_line);
    if (stride == s->stride && stride != 0) {
        if (s->confidence < cfg_.confidence_max)
            ++s->confidence;
        ++s->run_length;
    } else {
        retire_stride(access.pc, *s);
        s->confidence = s->confidence > 0 ? s->confidence - 1 : 0;
        s->run_length = 1;
        set_stride(access.pc, *s, stride);
    }
    s->last_line = access.line;
    s->last_access = access_counter_;

    if (s->confidence >= cfg_.confidence_threshold && s->stride != 0) {
        const std::uint32_t degree = class_cap(s->stride, s->run_length);
        out.reserve(degree);
        for (std::uint32_t k = 1; k <= degree; ++k) {
            out.push_back(static_cast<Addr>(
                static_cast<std::int64_t>(access.line) +
                s->stride * static_cast<std::int64_t>(k)));
        }
        prefetches_issued_ += out.size();
    }
    return out;
}

std::uint64_t
StreamGroup::storage_bytes() const
{
    // Per PC: tag (8) + LRU stamp (8) + per stream: last line (8),
    // stride (8), confidence/run (3), LRU stamp (8).
    const std::uint64_t per_pc =
        16 + 27ull * static_cast<std::uint64_t>(cfg_.streams_per_pc);
    // History entry: pc (8) + stride (8) + run (2) + time (8).
    return table_.size() * per_pc + history_.size() * 26;
}

void
StreamGroup::export_stats(StatRegistry &reg,
                          const std::string &prefix) const
{
    Prefetcher::export_stats(reg, prefix);
    reg.counter(prefix + ".streams_created") = streams_created_;
    reg.counter(prefix + ".fast_tracks") = fast_tracks_;
    reg.counter(prefix + ".stream_evictions") = stream_evictions_;
    reg.counter(prefix + ".pc_evictions") = pc_evictions_;
    reg.counter(prefix + ".patterns_recorded") = patterns_recorded_;
    reg.counter(prefix + ".prefetches_issued") = prefetches_issued_;
    reg.counter(prefix + ".table_pcs") = table_.size();
    reg.counter(prefix + ".groups") = groups_.size();
}

}  // namespace voyager::prefetch
