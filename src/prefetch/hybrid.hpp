/**
 * @file
 * Hybrid prefetcher composition. The paper's Fig. 9 red line is an
 * ISB+BO hybrid where the two components split the available degree
 * equally and degree 1 falls back to ISB alone.
 */
#pragma once

#include <memory>
#include <vector>

#include "sim/prefetcher.hpp"

namespace voyager::prefetch {

using sim::Prefetcher;
using voyager::Addr;

/**
 * Runs several component prefetchers and interleaves their candidates
 * up to a total degree. Components are trained on every access even
 * when their share of the degree is zero.
 */
class Hybrid final : public Prefetcher
{
  public:
    /**
     * @param name display name, e.g. "isb+bo"
     * @param parts components in priority order
     * @param degrees per-component degree budget (same arity as parts)
     */
    Hybrid(std::string name,
           std::vector<std::unique_ptr<Prefetcher>> parts,
           std::vector<std::uint32_t> degrees);

    std::string name() const override { return name_; }
    std::vector<Addr> on_access(const sim::LlcAccess &access) override;
    std::uint64_t storage_bytes() const override;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Prefetcher>> parts_;
    std::vector<std::uint32_t> degrees_;
};

/** The paper's ISB+BO hybrid with equal degree split. */
std::unique_ptr<Prefetcher> make_isb_bo_hybrid(std::uint32_t total_degree);

}  // namespace voyager::prefetch
