#include "prefetch/best_offset.hpp"

#include <algorithm>

#include "util/types.hpp"

namespace voyager::prefetch {

const std::vector<int> &
BestOffset::offset_list()
{
    // Offsets whose prime factors are in {2, 3, 5}, up to 256 — the
    // list from the original BO paper.
    static const std::vector<int> offsets = [] {
        std::vector<int> out;
        for (int d = 1; d <= 256; ++d) {
            int n = d;
            for (int f : {2, 3, 5})
                while (n % f == 0)
                    n /= f;
            if (n == 1)
                out.push_back(d);
        }
        return out;
    }();
    return offsets;
}

BestOffset::BestOffset(const BestOffsetConfig &cfg)
    : cfg_(cfg), scores_(offset_list().size(), 0)
{
}

void
BestOffset::rr_insert(Addr line)
{
    if (rr_set_.count(line))
        return;
    rr_fifo_.push_back(line);
    rr_set_.insert(line);
    while (rr_fifo_.size() > cfg_.rr_size) {
        rr_set_.erase(rr_fifo_.front());
        rr_fifo_.pop_front();
    }
}

bool
BestOffset::rr_contains(Addr line) const
{
    return rr_set_.count(line) != 0;
}

void
BestOffset::finish_phase()
{
    const auto &offs = offset_list();
    int best = 0;
    int best_score = cfg_.score_threshold - 1;
    for (std::size_t i = 0; i < offs.size(); ++i) {
        if (scores_[i] > best_score) {
            best_score = scores_[i];
            best = offs[i];
        }
    }
    best_offset_ = best;  // 0 when nothing reached the threshold
    std::fill(scores_.begin(), scores_.end(), 0);
    round_ = 0;
}

std::vector<Addr>
BestOffset::on_access(const sim::LlcAccess &access)
{
    const Addr line = access.line;
    const auto &offs = offset_list();

    // --- Learning: test one candidate offset per access. ---
    const int d = offs[test_cursor_];
    if (rr_contains(line - static_cast<Addr>(d))) {
        if (++scores_[test_cursor_] >= cfg_.max_score) {
            best_offset_ = d;
            std::fill(scores_.begin(), scores_.end(), 0);
            round_ = 0;
            test_cursor_ = 0;
        }
    }
    if (++test_cursor_ >= offs.size()) {
        test_cursor_ = 0;
        if (++round_ >= cfg_.max_rounds)
            finish_phase();
    }
    rr_insert(line);

    // --- Prediction: X + D, X + 2D, ... with the adopted offset. ---
    std::vector<Addr> out;
    if (best_offset_ != 0) {
        for (std::uint32_t k = 1; k <= cfg_.degree; ++k) {
            const Addr cand =
                line + static_cast<Addr>(best_offset_) * k;
            if (cfg_.same_page_only &&
                page_of_line(cand) != page_of_line(line)) {
                break;
            }
            out.push_back(cand);
        }
    }
    return out;
}

std::uint64_t
BestOffset::storage_bytes() const
{
    // RR table entries + one score per candidate offset.
    return cfg_.rr_size * 8 + scores_.size() * 2;
}

void
BestOffset::export_stats(StatRegistry &reg,
                         const std::string &prefix) const
{
    Prefetcher::export_stats(reg, prefix);
    reg.gauge(prefix + ".current_offset") = best_offset_;
    reg.counter(prefix + ".learning_round") =
        static_cast<std::uint64_t>(round_ < 0 ? 0 : round_);
    reg.counter(prefix + ".rr_occupancy") = rr_set_.size();
}

}  // namespace voyager::prefetch
