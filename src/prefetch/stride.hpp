/**
 * @file
 * Classic per-PC (IP) stride prefetcher and a next-line prefetcher.
 * Included as additional rule-based baselines (paper Eq. 5/6) and as
 * components for hybrids.
 */
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/prefetcher.hpp"

namespace voyager::prefetch {

using sim::Prefetcher;
using voyager::Addr;

/** Per-PC stride detector with a 2-bit confidence counter. */
class IpStride final : public Prefetcher
{
  public:
    explicit IpStride(std::uint32_t degree = 1,
                      std::uint32_t confidence_threshold = 2);

    std::string name() const override { return "ip_stride"; }
    std::vector<Addr> on_access(const sim::LlcAccess &access) override;
    std::uint64_t storage_bytes() const override;

  private:
    struct Entry
    {
        Addr last_line = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
        bool valid = false;
    };

    std::uint32_t degree_;
    std::uint32_t threshold_;
    std::unordered_map<Addr, Entry> table_;
};

/** Next-N-lines prefetcher. */
class NextLine final : public Prefetcher
{
  public:
    explicit NextLine(std::uint32_t degree = 1) : degree_(degree) {}

    std::string name() const override { return "next_line"; }

    std::vector<Addr>
    on_access(const sim::LlcAccess &access) override
    {
        std::vector<Addr> out;
        out.reserve(degree_);
        for (std::uint32_t k = 1; k <= degree_; ++k)
            out.push_back(access.line + k);
        return out;
    }

  private:
    std::uint32_t degree_;
};

}  // namespace voyager::prefetch
