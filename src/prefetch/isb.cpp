#include "prefetch/isb.hpp"

namespace voyager::prefetch {

Isb::Isb(std::uint32_t degree, std::uint32_t stream_chunk)
    : degree_(degree), chunk_(stream_chunk)
{
}

void
Isb::map_structural(Addr line, std::uint64_t s)
{
    auto old = phys_to_struct_.find(line);
    if (old != phys_to_struct_.end())
        struct_to_phys_.erase(old->second);
    phys_to_struct_[line] = s;
    struct_to_phys_[s] = line;
}

std::vector<Addr>
Isb::on_access(const sim::LlcAccess &access)
{
    const Addr line = access.line;

    // --- Training: extend the PC-localized stream A -> B. ---
    auto last_it = last_by_pc_.find(access.pc);
    if (last_it != last_by_pc_.end() && last_it->second != line) {
        const Addr prev = last_it->second;
        auto ps = phys_to_struct_.find(prev);
        std::uint64_t s_prev;
        if (ps == phys_to_struct_.end()) {
            // The trigger has no structural home yet: open a stream.
            s_prev = next_stream_base_;
            next_stream_base_ += chunk_;
            map_structural(prev, s_prev);
        } else {
            s_prev = ps->second;
        }
        const std::uint64_t desired = s_prev + 1;
        auto cur = phys_to_struct_.find(line);
        if (cur == phys_to_struct_.end()) {
            // B is unmapped: append it to A's stream if the slot is
            // free (and not a chunk boundary), else open a new stream.
            if (desired % chunk_ != 0 &&
                !struct_to_phys_.count(desired)) {
                map_structural(line, desired);
            } else {
                map_structural(line, next_stream_base_);
                next_stream_base_ += chunk_;
            }
        }
        // B already mapped: keep its first-learned home. Remapping on
        // every divergent pair would tear streams apart on loop
        // back-edges (e.g. ...,C,A,B,C,A,... would unmap A each lap).
    }
    last_by_pc_[access.pc] = line;

    // --- Prediction: walk the structural space from B. ---
    std::vector<Addr> out;
    auto cur = phys_to_struct_.find(line);
    if (cur != phys_to_struct_.end()) {
        const std::uint64_t s = cur->second;
        for (std::uint32_t k = 1; k <= degree_; ++k) {
            // Stay within this stream's chunk.
            if ((s + k) / chunk_ != s / chunk_)
                break;
            auto sp = struct_to_phys_.find(s + k);
            if (sp == struct_to_phys_.end())
                break;
            out.push_back(sp->second);
        }
    }
    return out;
}

std::uint64_t
Isb::storage_bytes() const
{
    // Bidirectional mapping entries (8 B each side + 4 B tag overhead)
    // plus the per-PC training units.
    return phys_to_struct_.size() * 12 + struct_to_phys_.size() * 12 +
           last_by_pc_.size() * 16;
}

void
Isb::export_stats(StatRegistry &reg, const std::string &prefix) const
{
    Prefetcher::export_stats(reg, prefix);
    reg.counter(prefix + ".streams") = num_streams();
    reg.counter(prefix + ".mappings") = phys_to_struct_.size();
    reg.counter(prefix + ".training_units") = last_by_pc_.size();
}

}  // namespace voyager::prefetch
