/**
 * @file
 * StreamGroup: an enhanced stream prefetcher built as a stronger
 * rule-based baseline for regular (AI-inference style) workloads
 * (DESIGN.md §5.17).
 *
 * Three mechanisms on top of the classic per-PC stride table:
 *
 *  1. Multiple streams per PC. Transformer kernels interleave several
 *     strided walks issued by the *same* instruction (one per head, or
 *     one per tenant); a single-entry-per-PC table thrashes on these.
 *     Each PC owns a small set-associative group of streams and an
 *     access is matched to the stream it continues.
 *  2. Stride classification with a confidence-ramped degree. Streams
 *     are classified DENSE / MEDIUM / SPARSE by stride magnitude and
 *     observed run length; the prefetch degree ramps from 1 up to the
 *     class cap as the run lengthens, so mispredictions during
 *     training stay cheap while established dense streams run ahead.
 *  3. A repetition fast-track. When a stream terminates (its stride
 *     breaks, or it is evicted) after a long run, its (pc, stride)
 *     pattern is remembered; a new stream at the same PC that adopts
 *     the same stride within the reuse window skips the confidence
 *     training phase and immediately prefetches at the learned run's
 *     degree. Weight-matrix streams re-entered once per layer per
 *     token benefit on every revisit.
 *
 * Compatibility contract (pinned by tests/stream_group_test.cpp): on a
 * pure single-stride stream whose stride magnitude is within the dense
 * class, a StreamGroup with max_degree == D issues, after warm-up,
 * exactly the predictions IpStride(D) issues — same lines, same order,
 * on the same accesses.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/prefetcher.hpp"

namespace voyager::prefetch {

using sim::Prefetcher;
using voyager::Addr;

/** StreamGroup parameters. */
struct StreamGroupConfig
{
    /** Degree cap for established dense streams (|stride| <=
     *  dense_stride, run >= dense_min_run). */
    std::uint32_t max_degree = 4;
    /** Degree cap for medium streams (|stride| <= medium_stride). */
    std::uint32_t medium_degree = 2;
    /** Degree cap for sparse streams (everything else). */
    std::uint32_t sparse_degree = 1;
    /** |stride| (lines) at or below which a stream can be dense. */
    std::int64_t dense_stride = 2;
    /** |stride| (lines) at or below which a stream can be medium. */
    std::int64_t medium_stride = 16;
    /** Run length required for the dense degree cap. */
    std::uint32_t dense_min_run = 8;
    /** Run length required for the medium degree cap. */
    std::uint32_t medium_min_run = 4;
    /** Confidence needed before any prediction (IpStride-equal). */
    std::uint32_t confidence_threshold = 2;
    /** Confidence saturation value (IpStride-equal). */
    std::uint32_t confidence_max = 3;
    /** An access within this many lines of a stream's head may be
     *  matched to it; farther accesses allocate a new stream. */
    std::int64_t match_window = 64;
    /** Bound on tracked PCs (table associativity is streams_per_pc). */
    std::size_t max_pcs = 256;
    /** Streams tracked concurrently per PC. */
    std::size_t streams_per_pc = 4;
    /** Terminated-pattern history entries for the fast-track. */
    std::size_t history_size = 16;
    /** Accesses within which a terminated pattern may fast-track. */
    std::uint64_t history_window = 4096;
    /** Minimum run length for a terminated stream to be remembered. */
    std::uint32_t history_min_run = 4;
    /** Streams in a stride group at least this large (and past the
     *  confidence threshold) are protected from eviction. */
    std::uint32_t protect_members = 2;
};

/** Enhanced stream prefetcher (see file header). */
class StreamGroup final : public Prefetcher
{
  public:
    explicit StreamGroup(const StreamGroupConfig &cfg = {});

    std::string name() const override { return "stream_group"; }
    std::vector<Addr> on_access(const sim::LlcAccess &access) override;
    std::uint64_t storage_bytes() const override;
    void export_stats(StatRegistry &reg,
                      const std::string &prefix) const override;

    /** PCs currently tracked (bounded by cfg.max_pcs). */
    std::size_t table_pcs() const { return table_.size(); }
    /** Streams allocated over the run. */
    std::uint64_t streams_created() const { return streams_created_; }
    /** Streams whose training phase was skipped by the fast-track. */
    std::uint64_t fast_tracks() const { return fast_tracks_; }
    /** Valid streams evicted from a PC's group. */
    std::uint64_t stream_evictions() const { return stream_evictions_; }
    /** Whole PC entries evicted from the table. */
    std::uint64_t pc_evictions() const { return pc_evictions_; }
    /** Terminated patterns recorded into the fast-track history. */
    std::uint64_t patterns_recorded() const { return patterns_recorded_; }
    /** Live streams currently sharing the given stride. */
    std::uint32_t
    group_size(std::int64_t stride) const
    {
        auto it = groups_.find(stride);
        return it == groups_.end() ? 0 : it->second;
    }
    /** True when the stream tracking (pc, stride) is currently
     *  established enough to predict (test hook). */
    bool is_established(Addr pc, std::int64_t stride) const;

  private:
    /** One tracked stream. */
    struct Stream
    {
        Addr last_line = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
        std::uint32_t run_length = 0;
        std::uint64_t last_access = 0;
        bool valid = false;
    };

    /** Per-PC stream set. */
    struct Entry
    {
        std::vector<Stream> streams;
        std::uint64_t last_access = 0;
    };

    /** A terminated stream remembered for the fast-track. */
    struct Pattern
    {
        Addr pc = 0;
        std::int64_t stride = 0;
        std::uint32_t run_length = 0;
        std::uint64_t time = 0;
    };

    Entry &lookup_entry(Addr pc);
    Stream *match_stream(Entry &e, Addr line);
    Stream &allocate_stream(Entry &e, Addr pc);
    void retire_stride(Addr pc, Stream &s);
    void set_stride(Addr pc, Stream &s, std::int64_t stride);
    std::uint32_t class_cap(std::int64_t stride,
                            std::uint32_t run_length) const;
    bool stream_protected(const Stream &s) const;

    StreamGroupConfig cfg_;
    std::uint64_t access_counter_ = 0;
    std::unordered_map<Addr, Entry> table_;
    /** stride -> number of live streams using it (group sizes). */
    std::unordered_map<std::int64_t, std::uint32_t> groups_;
    std::deque<Pattern> history_;

    std::uint64_t streams_created_ = 0;
    std::uint64_t fast_tracks_ = 0;
    std::uint64_t stream_evictions_ = 0;
    std::uint64_t pc_evictions_ = 0;
    std::uint64_t patterns_recorded_ = 0;
    std::uint64_t prefetches_issued_ = 0;
};

}  // namespace voyager::prefetch
