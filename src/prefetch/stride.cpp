#include "prefetch/stride.hpp"

namespace voyager::prefetch {

IpStride::IpStride(std::uint32_t degree, std::uint32_t confidence_threshold)
    : degree_(degree), threshold_(confidence_threshold)
{
}

std::vector<Addr>
IpStride::on_access(const sim::LlcAccess &access)
{
    std::vector<Addr> out;
    Entry &e = table_[access.pc];
    if (e.valid) {
        const std::int64_t stride =
            static_cast<std::int64_t>(access.line) -
            static_cast<std::int64_t>(e.last_line);
        if (stride == e.stride && stride != 0) {
            if (e.confidence < 3)
                ++e.confidence;
        } else {
            e.stride = stride;
            e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
        }
        if (e.confidence >= threshold_ && e.stride != 0) {
            for (std::uint32_t k = 1; k <= degree_; ++k) {
                out.push_back(static_cast<Addr>(
                    static_cast<std::int64_t>(access.line) +
                    e.stride * static_cast<std::int64_t>(k)));
            }
        }
    }
    e.last_line = access.line;
    e.valid = true;
    return out;
}

std::uint64_t
IpStride::storage_bytes() const
{
    // PC tag + last line + stride + confidence.
    return table_.size() * 21;
}

}  // namespace voyager::prefetch
