/**
 * @file
 * Bring-your-own-trace: shows the library's public API for external
 * traces and model persistence.
 *
 *   1. Build a Trace programmatically (or load one with
 *      Trace::load_binary_file / load_text — the format is documented
 *      in src/trace/trace.hpp).
 *   2. Train Voyager on its LLC stream.
 *   3. Save the trained weights, reload them into a fresh model, and
 *      verify the reloaded model predicts identically.
 *
 * Usage: custom_trace [--save=model.bin] [--trace_out=trace.bin]
 */
#include <fstream>
#include <iostream>

#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "nn/serialize.hpp"
#include "sim/simulator.hpp"
#include "trace/gen/recorder.hpp"
#include "util/config.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

int
main(int argc, char **argv)
{
    using namespace voyager;
    const auto cfg = Config::from_args(argc, argv);

    // 1. A hand-built workload: a linked-list walk interleaved with a
    //    strided scan — the classic mix a real application produces.
    trace::Trace t("custom");
    trace::TraceRecorder rec(t);
    Rng rng(7);
    std::vector<Addr> list_nodes(256);
    for (auto &n : list_nodes)
        n = 0x10000000 + rng.next_below(1 << 20) * 64;
    std::size_t pos = 0;
    for (int i = 0; i < 20000; ++i) {
        rec.load(0x400100, list_nodes[pos]);        // pointer chase
        pos = (pos + 1) % list_nodes.size();
        rec.load(0x400200,
                 0x20000000 + static_cast<Addr>(i % 4096) * 64);
        rec.compute(3);                             // "work"
    }
    std::cout << "built trace: " << t.size() << " accesses\n";

    const auto trace_out = cfg.get_string("trace_out", "");
    if (!trace_out.empty()) {
        t.save_binary_file(trace_out);
        std::cout << "saved trace to " << trace_out << " (reload with "
                  << "Trace::load_binary_file)\n";
    }

    // 2. Train Voyager on the LLC stream.
    const auto sim_cfg = sim::tiny_sim_config();
    const auto stream = sim::extract_llc_stream(t, sim_cfg);
    core::VoyagerConfig vcfg;
    vcfg.learning_rate = 2e-2;
    core::VoyagerAdapter voyager(vcfg, stream);
    core::OnlineTrainConfig train;
    train.train_passes = 6;
    train.cumulative = true;
    train.max_train_samples_per_epoch = 5000;
    const auto res = core::train_online(voyager, stream.size(), train);
    const auto metric = core::unified_accuracy_coverage(
        stream, res.predictions, res.first_predicted_index, 32);
    std::cout << "unified accuracy/coverage: " << pct(metric.value())
              << "\n";

    // 3. Persist the weights and verify a round trip.
    const auto path = cfg.get_string("save", "voyager_model.bin");
    {
        std::ofstream os(path, std::ios::binary);
        std::vector<const nn::Matrix *> weights;
        for (auto *w : voyager.model().weights())
            weights.push_back(w);
        nn::save_params(os, weights);
    }
    core::VoyagerAdapter reloaded(vcfg, stream);
    {
        std::ifstream is(path, std::ios::binary);
        nn::load_params(is, reloaded.model().weights());
    }
    std::vector<std::size_t> probe;
    for (std::size_t i = stream.size() / 2;
         i < stream.size() / 2 + 64 && i < stream.size(); ++i)
        probe.push_back(i);
    const auto a = voyager.predict_on(probe, 1);
    const auto b = reloaded.predict_on(probe, 1);
    std::size_t same = 0;
    for (std::size_t i = 0; i < probe.size(); ++i)
        same += a[i] == b[i];
    std::cout << "model saved to " << path << "; reloaded predictions "
              << same << "/" << probe.size() << " identical\n";
    return same == probe.size() ? 0 : 1;
}
