/**
 * @file
 * OLTP/server prefetching — the paper's search/ads story. Production
 * server traces have thousands of PCs and many interleaved request
 * contexts, which starves PC-localized temporal prefetchers. This
 * example builds search- and ads-like traces, evaluates the rule-based
 * prefetchers and Voyager with the unified accuracy/coverage metric
 * (these traces contain memory instructions only, as in the paper), and
 * prints the per-prefetcher breakdown.
 *
 * Usage: oltp_server [--scale=tiny|small] [--workload=search|ads]
 */
#include <iostream>

#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "prefetch/registry.hpp"
#include "trace/gen/workloads.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace voyager;
    const auto cfg = Config::from_args(argc, argv);
    const auto scale =
        trace::gen::parse_scale(cfg.get_string("scale", "tiny"));
    const auto filter = cfg.get_string("workload", "");

    std::vector<std::string> workloads = {"search", "ads"};
    if (!filter.empty())
        workloads = {filter};

    constexpr std::size_t kHorizon = 32;
    Table t({"workload", "#PCs", "stms", "isb", "domino", "voyager"});
    for (const auto &name : workloads) {
        const auto trace = trace::gen::make_workload(name, scale, 1);
        const auto stats = trace.stats();

        // OLTP traces are evaluated on the raw access stream (memory
        // instructions only — no IPC simulation), as in the paper.
        std::vector<core::LlcAccess> stream;
        stream.reserve(trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i) {
            core::LlcAccess a;
            a.index = i;
            a.pc = trace[i].pc;
            a.line = trace[i].line();
            a.is_load = trace[i].is_load;
            stream.push_back(a);
        }
        const std::size_t first = stream.size() / 5;

        auto rule_metric = [&](const char *rule) {
            auto pf = prefetch::make_prefetcher(rule, 1);
            const auto preds =
                core::run_prefetcher_on_stream(*pf, stream);
            return core::unified_accuracy_coverage(stream, preds, first,
                                                   kHorizon)
                .value();
        };
        const double m_stms = rule_metric("stms");
        const double m_isb = rule_metric("isb");
        const double m_domino = rule_metric("domino");

        core::VoyagerConfig vcfg;
        vcfg.learning_rate = 2e-2;
        core::VoyagerAdapter voyager(vcfg, stream);
        core::OnlineTrainConfig train;
        train.train_passes = 6;
    train.cumulative = true;
        train.max_train_samples_per_epoch = 6000;
        const auto res =
            core::train_online(voyager, stream.size(), train);
        const double m_voy =
            core::unified_accuracy_coverage(stream, res.predictions,
                                            res.first_predicted_index,
                                            kHorizon)
                .value();

        t.add_row({name,
                   strfmt("%llu", (unsigned long long)stats.unique_pcs),
                   pct(m_stms), pct(m_isb), pct(m_domino), pct(m_voy)});
    }
    t.print(std::cout);
    std::cout << "\nPaper result: on search/ads, idealized ISB reaches "
                 "only 13.8%/26.2% while Voyager reaches 37.8%/57.5% — "
                 "request interleaving breaks pairwise correlation but "
                 "not sequence models.\n";
    return 0;
}
