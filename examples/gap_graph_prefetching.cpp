/**
 * @file
 * Graph-analytics prefetching study — the scenario that motivates the
 * paper's Fig. 13/14 discussion. Runs the three GAP kernels (bfs, pr,
 * cc), shows why the line-48-style gather defeats pairwise temporal
 * prefetchers, and how Voyager's address-history feature recovers it.
 *
 * Usage: gap_graph_prefetching [--scale=tiny|small] [--kernel=pr]
 */
#include <iostream>

#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "prefetch/registry.hpp"
#include "sim/simulator.hpp"
#include "trace/gen/workloads.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace voyager;
    const auto cfg = Config::from_args(argc, argv);
    const auto scale =
        trace::gen::parse_scale(cfg.get_string("scale", "tiny"));
    const auto kernel_filter = cfg.get_string("kernel", "");
    const auto sim_cfg = scale == trace::gen::Scale::Tiny
                             ? sim::tiny_sim_config()
                             : sim::small_sim_config();

    std::vector<std::string> kernels = {"bfs", "pr", "cc"};
    if (!kernel_filter.empty())
        kernels = {kernel_filter};

    Table t({"kernel", "baseline IPC", "stms cov", "isb cov",
             "voyager cov", "voyager speedup"});
    for (const auto &kernel : kernels) {
        const auto trace = trace::gen::make_workload(kernel, scale, 1);
        sim::NullPrefetcher none;
        const auto base = sim::simulate(trace, sim_cfg, none);

        auto stms = prefetch::make_prefetcher("stms", 1);
        const auto r_stms = sim::simulate(trace, sim_cfg, *stms);
        auto isb = prefetch::make_prefetcher("isb", 1);
        const auto r_isb = sim::simulate(trace, sim_cfg, *isb);

        const auto stream = sim::extract_llc_stream(trace, sim_cfg);
        core::VoyagerConfig vcfg;
        vcfg.learning_rate = 2e-2;
        core::VoyagerAdapter voyager(vcfg, stream);
        core::OnlineTrainConfig train;
        train.train_passes = 6;
    train.cumulative = true;
        train.max_train_samples_per_epoch = 6000;
        const auto res =
            core::train_online(voyager, stream.size(), train);
        sim::ReplayPrefetcher replay("voyager", res.predictions);
        const auto r_voy = sim::simulate(trace, sim_cfg, replay);

        t.add_row({kernel, strfmt("%.3f", base.ipc), pct(r_stms.coverage),
                   pct(r_isb.coverage), pct(r_voy.coverage),
                   pct(r_voy.speedup_over(base))});
    }
    t.print(std::cout);
    std::cout << "\nThe pull-style PageRank gather (contrib[v] at Fig. 13 "
                 "line 48) depends on the in-neighbor list, which only a "
                 "history-aware predictor can follow.\n";
    return 0;
}
