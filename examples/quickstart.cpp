/**
 * @file
 * Quickstart: the whole Voyager pipeline in ~60 lines.
 *
 *   1. Generate an irregular workload trace (GAP PageRank).
 *   2. Run it through the ChampSim-style simulator to get the LLC
 *      access stream and a no-prefetch baseline IPC.
 *   3. Train Voyager online (train on epoch i, predict epoch i+1).
 *   4. Replay Voyager's predictions as an LLC prefetcher and compare
 *      IPC/accuracy/coverage against the idealized ISB baseline.
 *
 * Usage: quickstart [--scale=tiny|small] [--seed=N]
 */
#include <iostream>

#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "prefetch/registry.hpp"
#include "sim/simulator.hpp"
#include "trace/gen/workloads.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

int
main(int argc, char **argv)
{
    using namespace voyager;
    const auto cfg = Config::from_args(argc, argv);
    const auto scale =
        trace::gen::parse_scale(cfg.get_string("scale", "tiny"));
    const auto seed = cfg.get_uint("seed", 1);

    // 1. A workload trace: PageRank over a synthetic power-law graph.
    const auto trace = trace::gen::make_workload("pr", scale, seed);
    std::cout << "trace: " << trace.size() << " accesses, "
              << trace.instructions() << " instructions\n";

    // 2. Simulate with no prefetcher; capture the LLC access stream.
    const auto sim_cfg = scale == trace::gen::Scale::Tiny
                             ? sim::tiny_sim_config()
                             : sim::small_sim_config();
    sim::NullPrefetcher none;
    const auto baseline = sim::simulate(trace, sim_cfg, none);
    const auto stream = sim::extract_llc_stream(trace, sim_cfg);
    std::cout << "baseline IPC: " << baseline.ipc << ", LLC stream: "
              << stream.size() << " accesses\n";

    // 3. Train Voyager online on the LLC stream.
    core::VoyagerConfig vcfg;  // small defaults; see VoyagerConfig
    vcfg.learning_rate = 2e-2;
    core::VoyagerAdapter voyager(vcfg, stream);
    core::OnlineTrainConfig train;
    train.epochs = 5;
    train.train_passes = 6;
    train.cumulative = true;
    train.max_train_samples_per_epoch = 6000;
    const auto result = core::train_online(voyager, stream.size(), train);
    std::cout << "trained " << result.trained_samples << " samples in "
              << result.train_seconds << "s; model "
              << human_bytes(voyager.parameter_bytes()) << "\n";

    // 4. Replay predictions in the simulator; compare with ISB.
    sim::ReplayPrefetcher replay("voyager", result.predictions,
                                 voyager.parameter_bytes());
    const auto with_voyager = sim::simulate(trace, sim_cfg, replay);
    auto isb = prefetch::make_prefetcher("isb", 1);
    const auto with_isb = sim::simulate(trace, sim_cfg, *isb);

    std::cout << "\n              IPC    speedup  accuracy  coverage\n";
    auto report = [&](const char *name, const sim::SimResult &r) {
        std::cout << name << r.ipc << "  " << pct(r.speedup_over(baseline))
                  << "   " << pct(r.accuracy) << "    " << pct(r.coverage)
                  << "\n";
    };
    report("no prefetch   ", baseline);
    report("isb (ideal)   ", with_isb);
    report("voyager       ", with_voyager);

    const auto unified = core::unified_accuracy_coverage(
        stream, result.predictions, result.first_predicted_index, 32);
    std::cout << "\nvoyager unified accuracy/coverage: "
              << pct(unified.value()) << "\n";
    return 0;
}
